"""Aggregate function implementations, including MONOMI's server UDFs.

Standard SQL aggregates (SUM/COUNT/AVG/MIN/MAX) plus two UDFs the paper
installs on the unmodified DBMS:

* ``grp(x)``         — concatenates a group's values (Figure 3's ``GROUP()``
  operator): used when the client will aggregate itself after decryption;
* ``hom_agg(f, id)`` — grouped homomorphic addition (§5.3) over the packed
  Paillier ciphertext file named ``f``, driven by ``row_id`` values (§7).

``hom_agg`` handles both packing regimes with one mechanism:

* per-row packing (one row per ciphertext): every ciphertext the group
  touches is fully covered, so the whole group folds into a single running
  product — one modular multiplication per row, all packed columns at once;
* columnar packing (many rows per ciphertext): ciphertexts whose rows are
  all in the group fold into the product; *partially* covered ciphertexts
  cannot be summed homomorphically (that would add excluded rows), so they
  ship to the client with the slot offsets that matched, and the client adds
  those slots after decryption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ExecutionError
from repro.storage.ciphertext_store import CiphertextStore


class Aggregate:
    """One aggregate accumulator instance (per group, per call site)."""

    def update(self, args: list) -> None:
        raise NotImplementedError

    def finalize(self) -> object:
        raise NotImplementedError


class SumAgg(Aggregate):
    def __init__(self) -> None:
        self._total = None

    def update(self, args: list) -> None:
        value = args[0]
        if value is None:
            return
        self._total = value if self._total is None else self._total + value

    def finalize(self) -> object:
        return self._total


class CountAgg(Aggregate):
    """COUNT(x) — non-null count.  COUNT(*) passes a constant arg."""

    def __init__(self) -> None:
        self._count = 0

    def update(self, args: list) -> None:
        if not args or args[0] is not None:
            self._count += 1

    def finalize(self) -> object:
        return self._count


class AvgAgg(Aggregate):
    def __init__(self) -> None:
        self._total = 0
        self._count = 0

    def update(self, args: list) -> None:
        value = args[0]
        if value is None:
            return
        self._total += value
        self._count += 1

    def finalize(self) -> object:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAgg(Aggregate):
    def __init__(self) -> None:
        self._best = None

    def update(self, args: list) -> None:
        value = args[0]
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def finalize(self) -> object:
        return self._best


class MaxAgg(Aggregate):
    def __init__(self) -> None:
        self._best = None

    def update(self, args: list) -> None:
        value = args[0]
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def finalize(self) -> object:
        return self._best


class GrpAgg(Aggregate):
    """MONOMI's GROUP() UDF: ship the group's raw values to the client."""

    def __init__(self) -> None:
        self._values: list = []

    def update(self, args: list) -> None:
        self._values.append(args[0])

    def finalize(self) -> object:
        return tuple(self._values)


class DistinctWrapper(Aggregate):
    """Applies DISTINCT before delegating (e.g. COUNT(DISTINCT x))."""

    def __init__(self, inner: Aggregate) -> None:
        self._inner = inner
        self._seen: set = set()

    def update(self, args: list) -> None:
        key = tuple(args)
        if key in self._seen:
            return
        self._seen.add(key)
        self._inner.update(args)

    def finalize(self) -> object:
        return self._inner.finalize()


# ---------------------------------------------------------------------------
# Homomorphic aggregation
# ---------------------------------------------------------------------------


@dataclass
class HomAggResult:
    """Opaque result of ``hom_agg`` shipped to the client.

    ``product`` is the running Paillier product over fully covered
    ciphertexts (None when the group touched none fully).  ``partials`` are
    (ciphertext, covered-slot-offsets) pairs for partially covered groups;
    offsets repeat when a join multiplies a row.  ``layout`` is the packing
    metadata (public — it describes widths, not contents).
    """

    file_name: str
    column_names: tuple[str, ...]
    product: int | None
    partials: tuple[tuple[int, tuple[int, ...]], ...]
    multiplications: int
    ciphertext_bytes: int
    layout: object = None

    def byte_size(self) -> int:
        count = (1 if self.product is not None else 0) + len(self.partials)
        mask_bytes = sum(2 + 2 * len(offsets) for _, offsets in self.partials)
        return count * self.ciphertext_bytes + mask_bytes + len(self.file_name) + 16


class HomAgg(Aggregate):
    """Server-side grouped homomorphic addition (needs the ciphertext store)."""

    def __init__(self, store: CiphertextStore) -> None:
        self._store = store
        self._file_name: str | None = None
        self._row_ids: list[int] = []

    def update(self, args: list) -> None:
        if len(args) != 2:
            raise ExecutionError("hom_agg expects (file_name, row_id)")
        file_name, row_id = args
        if row_id is None:
            return
        if self._file_name is None:
            self._file_name = file_name
        elif self._file_name != file_name:
            raise ExecutionError("hom_agg file name must be constant per group")
        self._row_ids.append(int(row_id))

    def finalize(self) -> object:
        if self._file_name is None:
            return None
        file = self._store.get(self._file_name)
        public = file.public_key
        by_group: dict[int, list[int]] = {}
        for row_id in self._row_ids:
            group, offset = file.locate(row_id)
            by_group.setdefault(group, []).append(offset)
        product: int | None = None
        partials: list[tuple[int, tuple[int, ...]]] = []
        multiplications = 0
        for group, offsets in sorted(by_group.items()):
            ciphertext = file.read(group)
            covered = len(file.rows_in_group(group))
            # Fully covered exactly once: fold into the running product.
            if len(offsets) == covered and len(set(offsets)) == covered:
                if product is None:
                    product = ciphertext
                else:
                    product = public.add(product, ciphertext)
                    multiplications += 1
            else:
                # Partial coverage (or join-induced multiplicity): ship the
                # ciphertext with the matched offsets for client-side slotting.
                partials.append((ciphertext, tuple(sorted(offsets))))
        return HomAggResult(
            file_name=self._file_name,
            column_names=file.column_names,
            product=product,
            partials=tuple(partials),
            multiplications=multiplications,
            ciphertext_bytes=file.ciphertext_bytes,
            layout=file.layout,
        )


def make_aggregate(name: str, distinct: bool, store: CiphertextStore) -> Aggregate:
    factories = {
        "sum": SumAgg,
        "count": CountAgg,
        "avg": AvgAgg,
        "min": MinAgg,
        "max": MaxAgg,
        "grp": GrpAgg,
    }
    if name == "hom_agg" or name == "paillier_sum":
        agg: Aggregate = HomAgg(store)
    elif name in factories:
        agg = factories[name]()
    else:
        raise ExecutionError(f"unknown aggregate {name!r}")
    if distinct:
        agg = DistinctWrapper(agg)
    return agg
