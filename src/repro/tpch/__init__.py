"""TPC-H workload substrate: schema, generator, and the 22 queries."""

from repro.tpch.dbgen import generate
from repro.tpch.queries import TpchQuery, supported_numbers, tpch_queries
from repro.tpch.schema import ALL_TABLES

__all__ = ["ALL_TABLES", "TpchQuery", "generate", "supported_numbers", "tpch_queries"]
