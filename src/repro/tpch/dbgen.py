"""Deterministic TPC-H data generator (our ``dbgen``).

Generates all eight tables at a configurable scale factor with the value
distributions the benchmark queries are selective on: real nation/region
names, the part type/brand/container grammars, order/line date chains
(ship < receipt, commit windows), priorities, segments, and comment text
drawn from a vocabulary (so ``p_name LIKE '%green%'`` has the spec's hit
rate).  Monetary values are integer cents and percentages integer points
(see :mod:`repro.tpch.schema`).

The generator is seeded: the same (scale, seed) always produces the same
database, which keeps benchmarks reproducible.  Cardinalities follow the
spec's SF ratios (lineitem ~6M x SF etc.) with small-scale floors so tiny
scale factors still exercise every query.
"""

from __future__ import annotations

import datetime
import random

from repro.engine.catalog import Database
from repro.tpch import schema as tpch_schema

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINERS_1 = ["SM", "MED", "LG", "JUMBO", "WRAP"]
CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]

COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
    "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
]

WORDS = [
    "carefully", "quickly", "slyly", "furiously", "blithely", "ironic",
    "regular", "express", "special", "pending", "final", "bold", "even",
    "silent", "daring", "instructions", "packages", "requests", "accounts",
    "deposits", "foxes", "ideas", "theodolites", "pinto", "beans", "asymptotes",
    "dependencies", "platelets", "excuses", "sleep", "wake", "nag", "haggle",
]

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
_DATE_RANGE = (END_DATE - START_DATE).days


def generate(scale: float = 0.01, seed: int = 20130826) -> Database:
    """Build a TPC-H database at the given scale factor."""
    rng = random.Random(seed)
    db = Database(name=f"tpch_sf{scale}")
    for table_schema in tpch_schema.ALL_TABLES:
        db.create_table(table_schema)

    _gen_region(db, rng)
    _gen_nation(db, rng)
    num_supplier = max(10, round(10_000 * scale))
    num_customer = max(30, round(150_000 * scale))
    num_part = max(40, round(200_000 * scale))
    num_orders = max(150, round(1_500_000 * scale))
    _gen_supplier(db, rng, num_supplier)
    _gen_customer(db, rng, num_customer)
    _gen_part(db, rng, num_part)
    _gen_partsupp(db, rng, num_part, num_supplier)
    _gen_orders_lineitem(db, rng, num_orders, num_customer, num_part, num_supplier)
    return db


def _comment(rng: random.Random, min_words: int = 3, max_words: int = 8) -> str:
    """Filler text; word ranges are tuned per table to the spec's average
    column widths (ps_comment is the longest at 49-198 chars, l_comment the
    shortest at 10-43)."""
    n = rng.randint(min_words, max_words)
    return " ".join(rng.choice(WORDS) for _ in range(n))


def _date_between(rng: random.Random, lo_offset: int = 0, hi_offset: int | None = None) -> datetime.date:
    hi = hi_offset if hi_offset is not None else _DATE_RANGE
    return START_DATE + datetime.timedelta(days=rng.randint(lo_offset, hi))


def _phone(rng: random.Random, nationkey: int) -> str:
    return (
        f"{nationkey + 10}-{rng.randint(100, 999)}-"
        f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
    )


def _gen_region(db: Database, rng: random.Random) -> None:
    table = db.table("region")
    for i, name in enumerate(REGIONS):
        table.insert((i, name, _comment(rng)))


def _gen_nation(db: Database, rng: random.Random) -> None:
    table = db.table("nation")
    for i, (name, regionkey) in enumerate(NATIONS):
        table.insert((i, name, regionkey, _comment(rng)))


def _gen_supplier(db: Database, rng: random.Random, count: int) -> None:
    table = db.table("supplier")
    for i in range(1, count + 1):
        nationkey = rng.randrange(len(NATIONS))
        # ~5 per 10,000 suppliers mention "Customer Complaints" (Q16 filter).
        if rng.random() < 0.0005:
            comment = "wake Customer slowly Complaints " + _comment(rng, 2, 8)
        else:
            comment = _comment(rng, 4, 14)
        table.insert(
            (
                i,
                f"Supplier#{i:09d}",
                _comment(rng, 2, 5),
                nationkey,
                _phone(rng, nationkey),
                rng.randint(0, 999_999),  # cents, non-negative (see DESIGN.md)
                comment,
            )
        )


def _gen_customer(db: Database, rng: random.Random, count: int) -> None:
    table = db.table("customer")
    for i in range(1, count + 1):
        nationkey = rng.randrange(len(NATIONS))
        table.insert(
            (
                i,
                f"Customer#{i:09d}",
                _comment(rng, 2, 5),
                nationkey,
                _phone(rng, nationkey),
                rng.randint(0, 999_999),
                rng.choice(SEGMENTS),
                _comment(rng, 5, 16),
            )
        )


def _gen_part(db: Database, rng: random.Random, count: int) -> None:
    table = db.table("part")
    for i in range(1, count + 1):
        name = " ".join(rng.sample(COLORS, 5))
        mfgr = f"Manufacturer#{rng.randint(1, 5)}"
        brand = f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}"
        part_type = (
            f"{rng.choice(TYPE_SYLLABLE_1)} {rng.choice(TYPE_SYLLABLE_2)} "
            f"{rng.choice(TYPE_SYLLABLE_3)}"
        )
        container = f"{rng.choice(CONTAINERS_1)} {rng.choice(CONTAINERS_2)}"
        retail = (90_000 + (i * 10) % 20_001) + rng.randint(0, 99)
        table.insert(
            (i, name, mfgr, brand, part_type, rng.randint(1, 50), container, retail, _comment(rng, 1, 3))
        )


def _gen_partsupp(db: Database, rng: random.Random, num_part: int, num_supplier: int) -> None:
    table = db.table("partsupp")
    for part in range(1, num_part + 1):
        for j in range(4):
            supp = ((part + j * (num_supplier // 4 + 1)) % num_supplier) + 1
            table.insert(
                (
                    part,
                    supp,
                    rng.randint(1, 9_999),
                    rng.randint(100, 100_000),  # cents
                    _comment(rng, 8, 28),
                )
            )


def _gen_orders_lineitem(
    db: Database,
    rng: random.Random,
    num_orders: int,
    num_customer: int,
    num_part: int,
    num_supplier: int,
) -> None:
    orders = db.table("orders")
    lineitem = db.table("lineitem")
    for key in range(1, num_orders + 1):
        custkey = rng.randint(1, num_customer)
        orderdate = _date_between(rng, 0, _DATE_RANGE - 151)
        num_lines = rng.randint(1, 7)
        total = 0
        lines = []
        for line_no in range(1, num_lines + 1):
            partkey = rng.randint(1, num_part)
            suppkey = rng.randint(1, num_supplier)
            quantity = rng.randint(1, 50)
            retail = 90_000 + (partkey * 10) % 20_001
            extended = quantity * retail // 10
            discount = rng.randint(0, 10)
            tax = rng.randint(0, 8)
            shipdate = orderdate + datetime.timedelta(days=rng.randint(1, 121))
            commitdate = orderdate + datetime.timedelta(days=rng.randint(30, 90))
            receiptdate = shipdate + datetime.timedelta(days=rng.randint(1, 30))
            if receiptdate > shipdate and rng.random() < 0.5:
                returnflag = rng.choice(["R", "A"])
            else:
                returnflag = "N"
            linestatus = "O" if shipdate > datetime.date(1995, 6, 17) else "F"
            lines.append(
                (
                    key,
                    partkey,
                    suppkey,
                    line_no,
                    quantity,
                    extended,
                    discount,
                    tax,
                    returnflag,
                    linestatus,
                    shipdate,
                    commitdate,
                    receiptdate,
                    rng.choice(SHIP_INSTRUCT),
                    rng.choice(SHIP_MODES),
                    _comment(rng, 2, 6),
                )
            )
            total += extended * (100 - discount) * (100 + tax) // 10_000
        all_filled = all(line[10] <= datetime.date(1995, 6, 17) for line in lines)
        status = "F" if all_filled else ("O" if all(line[10] > datetime.date(1995, 6, 17) for line in lines) else "P")
        orders.insert(
            (
                key,
                custkey,
                status,
                total,
                orderdate,
                rng.choice(PRIORITIES),
                f"Clerk#{rng.randint(1, max(1, num_orders // 1000)):09d}",
                0,
                _comment(rng, 3, 11),
            )
        )
        lineitem.insert_many(lines)
