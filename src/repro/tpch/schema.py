"""TPC-H schema, with DECIMALs scaled to integers.

The paper replaces all DECIMAL types with integers for both the plaintext
baseline and the encrypted database (§8.1): monetary values are stored in
cents, and percentages (discount, tax) as whole points.  The query texts in
:mod:`repro.tpch.queries` are written against this scaled schema.
"""

from __future__ import annotations

from repro.engine.schema import TableSchema, schema

REGION = schema(
    "region",
    ("r_regionkey", "int"),
    ("r_name", "text"),
    ("r_comment", "text"),
    primary_key=("r_regionkey",),
)

NATION = schema(
    "nation",
    ("n_nationkey", "int"),
    ("n_name", "text"),
    ("n_regionkey", "int"),
    ("n_comment", "text"),
    primary_key=("n_nationkey",),
)

SUPPLIER = schema(
    "supplier",
    ("s_suppkey", "int"),
    ("s_name", "text"),
    ("s_address", "text"),
    ("s_nationkey", "int"),
    ("s_phone", "text"),
    ("s_acctbal", "int"),  # cents
    ("s_comment", "text"),
    primary_key=("s_suppkey",),
)

CUSTOMER = schema(
    "customer",
    ("c_custkey", "int"),
    ("c_name", "text"),
    ("c_address", "text"),
    ("c_nationkey", "int"),
    ("c_phone", "text"),
    ("c_acctbal", "int"),  # cents
    ("c_mktsegment", "text"),
    ("c_comment", "text"),
    primary_key=("c_custkey",),
)

PART = schema(
    "part",
    ("p_partkey", "int"),
    ("p_name", "text"),
    ("p_mfgr", "text"),
    ("p_brand", "text"),
    ("p_type", "text"),
    ("p_size", "int"),
    ("p_container", "text"),
    ("p_retailprice", "int"),  # cents
    ("p_comment", "text"),
    primary_key=("p_partkey",),
)

PARTSUPP = schema(
    "partsupp",
    ("ps_partkey", "int"),
    ("ps_suppkey", "int"),
    ("ps_availqty", "int"),
    ("ps_supplycost", "int"),  # cents
    ("ps_comment", "text"),
    primary_key=("ps_partkey", "ps_suppkey"),
)

ORDERS = schema(
    "orders",
    ("o_orderkey", "int"),
    ("o_custkey", "int"),
    ("o_orderstatus", "text"),
    ("o_totalprice", "int"),  # cents
    ("o_orderdate", "date"),
    ("o_orderpriority", "text"),
    ("o_clerk", "text"),
    ("o_shippriority", "int"),
    ("o_comment", "text"),
    primary_key=("o_orderkey",),
)

LINEITEM = schema(
    "lineitem",
    ("l_orderkey", "int"),
    ("l_partkey", "int"),
    ("l_suppkey", "int"),
    ("l_linenumber", "int"),
    ("l_quantity", "int"),
    ("l_extendedprice", "int"),  # cents
    ("l_discount", "int"),  # percent points 0..10
    ("l_tax", "int"),  # percent points 0..8
    ("l_returnflag", "text"),
    ("l_linestatus", "text"),
    ("l_shipdate", "date"),
    ("l_commitdate", "date"),
    ("l_receiptdate", "date"),
    ("l_shipinstruct", "text"),
    ("l_shipmode", "text"),
    ("l_comment", "text"),
    primary_key=("l_orderkey", "l_linenumber"),
)

ALL_TABLES: tuple[TableSchema, ...] = (
    REGION,
    NATION,
    SUPPLIER,
    CUSTOMER,
    PART,
    PARTSUPP,
    ORDERS,
    LINEITEM,
)
