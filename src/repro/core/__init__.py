"""MONOMI core: split execution, optimizations, designer, and planner."""

from repro.core.client import MonomiClient, QueryOutcome, QueryStream
from repro.core.design import (
    EncEntry,
    HomGroup,
    PhysicalDesign,
    TechniqueFlags,
    normalize_expr,
)
from repro.core.designer import Designer, DesignResult
from repro.core.dml import DmlExecutor
from repro.core.encdata import CryptoProvider
from repro.core.incagg import MaintainedAggregates
from repro.core.loader import EncryptedLoader, complete_design
from repro.core.normalize import normalize_dml, normalize_query
from repro.core.pexec import PlanExecutor, PlanStream
from repro.core.plan import RemoteRelation, SplitPlan
from repro.core.planner import Planner
from repro.core.schemes import SCHEME_TABLE, Scheme, weakest
from repro.core.sizer import DesignSizer
from repro.core.splitter import generate_query_plan

__all__ = [
    "CryptoProvider",
    "DesignResult",
    "DesignSizer",
    "Designer",
    "DmlExecutor",
    "EncEntry",
    "EncryptedLoader",
    "HomGroup",
    "MaintainedAggregates",
    "MonomiClient",
    "PhysicalDesign",
    "PlanExecutor",
    "PlanStream",
    "Planner",
    "QueryOutcome",
    "QueryStream",
    "RemoteRelation",
    "SCHEME_TABLE",
    "Scheme",
    "SplitPlan",
    "TechniqueFlags",
    "complete_design",
    "generate_query_plan",
    "normalize_dml",
    "normalize_expr",
    "normalize_query",
    "weakest",
]
