"""SQL type inference for expressions over a plaintext schema.

The rewriter needs result types to pick ciphers (FFX for ints, CMC for
text, ...) and the loader needs them to build encrypted table schemas.
"""

from __future__ import annotations

import datetime

from repro.common.errors import PlanningError
from repro.engine.schema import TableSchema
from repro.sql import ast


def infer_type(expr: ast.Expr, schemas: dict[str, TableSchema]) -> str:
    """Infer the SQL type of ``expr`` ('int', 'float', 'text', 'date',
    'bool') given plaintext table schemas keyed by binding name."""
    if isinstance(expr, ast.Literal):
        return _literal_type(expr.value)
    if isinstance(expr, ast.Column):
        return _column_type(expr, schemas)
    if isinstance(expr, ast.Param):
        raise PlanningError("cannot infer type of unbound parameter")
    if isinstance(expr, ast.BinOp):
        if expr.op in ("and", "or", "=", "<>", "<", "<=", ">", ">="):
            return "bool"
        if expr.op == "||":
            return "text"
        left = infer_type(expr.left, schemas)
        right = infer_type(expr.right, schemas)
        if expr.op in ("+", "-"):
            if left == "date" and right in ("interval", "int"):
                return "date"
            if left == "date" and right == "date":
                return "int"
            if right == "date":
                return "date"
        if expr.op == "/":
            return "float"
        if "float" in (left, right):
            return "float"
        return "int"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "not":
            return "bool"
        return infer_type(expr.operand, schemas)
    if isinstance(expr, ast.Interval):
        return "interval"
    if isinstance(expr, (ast.Like, ast.Between, ast.InList, ast.InSubquery, ast.Exists, ast.IsNull)):
        return "bool"
    if isinstance(expr, ast.Extract):
        return "int"
    if isinstance(expr, ast.Substring):
        return "text"
    if isinstance(expr, ast.CaseWhen):
        for _, result in expr.whens:
            result_type = infer_type(result, schemas)
            if result_type != "unknown":
                return result_type
        if expr.else_ is not None:
            return infer_type(expr.else_, schemas)
        return "unknown"
    if isinstance(expr, ast.FuncCall):
        if expr.name == "count":
            return "int"
        if expr.name == "avg":
            return "float"
        if expr.name in ("sum", "min", "max"):
            return infer_type(expr.args[0], schemas)
        if expr.name in ("length", "round", "abs"):
            return "int"
        if expr.name in ("upper", "lower"):
            return "text"
        return "unknown"
    if isinstance(expr, ast.ScalarSubquery):
        item = expr.query.items[0]
        inner = _subquery_schemas(expr.query, schemas)
        return infer_type(item.expr, inner)
    raise PlanningError(f"cannot infer type of {expr!r}")


def _literal_type(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "text"
    if isinstance(value, datetime.date):
        return "date"
    if value is None:
        return "unknown"
    return "unknown"


def _column_type(column: ast.Column, schemas: dict[str, TableSchema]) -> str:
    if column.table is not None:
        schema = schemas.get(column.table)
        if schema is not None and schema.has_column(column.name):
            return schema.column(column.name).type
    matches = [
        s.column(column.name).type
        for s in schemas.values()
        if s.has_column(column.name)
    ]
    if len(set(matches)) == 1:
        return matches[0]
    if not matches:
        raise PlanningError(f"unknown column {column.qualified!r} during typing")
    raise PlanningError(f"ambiguous column {column.qualified!r} during typing")


def _subquery_schemas(
    query: ast.Select, outer: dict[str, TableSchema]
) -> dict[str, TableSchema]:
    """Binding -> schema map for a subquery's FROM items (plus outer, for
    correlated references)."""
    inner = dict(outer)
    for ref in _flatten_refs(query.from_items):
        if isinstance(ref, ast.TableName):
            base = outer.get(ref.name)
            if base is not None:
                inner[ref.binding] = base
    return inner


def _flatten_refs(refs) -> list[ast.TableRef]:
    out: list[ast.TableRef] = []
    for ref in refs:
        if isinstance(ref, ast.Join):
            out.extend(_flatten_refs([ref.left, ref.right]))
        else:
            out.append(ref)
    return out
