"""Crash-safe bulk-load journal: resume an interrupted encrypted load.

Encrypting a database is the most expensive phase of MONOMI setup —
per-value symmetric encryption plus Paillier packing for homomorphic
groups (§7).  A crash partway (OOM kill, node preemption, ``kill -9``)
must not force re-encrypting work the server already holds, and must
never double-insert rows into the encrypted store.

:class:`LoadJournal` is a directory the loader writes alongside the
target backend:

``journal.jsonl``
    One JSON event per line, fsync'd before the loader moves on:
    ``begin`` (load fingerprint), ``table_created``, ``batch``
    (cumulative rows committed), ``table_done``, ``hom_saved`` (packed
    ciphertext file pickled to disk), and ``load_done``.  A crash while
    appending leaves at most one torn final line, which replay drops;
    a corrupt *interior* line means the journal itself is damaged and
    raises :class:`~repro.common.errors.LoadJournalError`.

``hom_*.pkl``
    Each homomorphic group's packed :class:`CiphertextFile`, written
    atomically (tmp + rename) once its Paillier encryption finishes —
    so a crash after the expensive packing step never repeats it, even
    when the backend keeps its ciphertext store in process memory.

The journal records *progress*, not truth: on resume the loader trusts
the backend (``row_count``, ``has_table``) for how many rows actually
committed, because the backend's transaction is what survived the
crash.  The journal's job is the part the backend cannot answer — which
load this is (fingerprint check, so a journal is never replayed against
a different design or database) and where the already-paid Paillier
ciphertexts live.
"""

from __future__ import annotations

import json
import os
import pickle
import re

from repro.common.errors import LoadJournalError

JOURNAL_NAME = "journal.jsonl"

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]")


def _hom_filename(name: str) -> str:
    return f"hom_{_SAFE_NAME.sub('_', name)}.pkl"


class LoadJournal:
    """Append-only load progress log rooted at ``directory``."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, JOURNAL_NAME)
        self.events: list[dict] = self._replay()

    # -- event log ------------------------------------------------------------

    def _replay(self) -> list[dict]:
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as fh:
            raw_lines = [line for line in fh.read().split(b"\n") if line.strip()]
        events: list[dict] = []
        for index, line in enumerate(raw_lines):
            try:
                event = json.loads(line)
            except ValueError:
                if index == len(raw_lines) - 1:
                    break  # torn tail: the crash hit mid-append
                raise LoadJournalError(
                    f"corrupt journal line {index + 1} in {self.path}"
                ) from None
            if not isinstance(event, dict) or "event" not in event:
                raise LoadJournalError(
                    f"malformed journal event at line {index + 1} in {self.path}"
                )
            events.append(event)
        return events

    def _append(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self.events.append(event)

    # -- lifecycle ------------------------------------------------------------

    def begin(self, fingerprint: str) -> bool:
        """Open the journal for ``fingerprint``; returns True on resume.

        A non-empty journal must carry the same fingerprint — resuming a
        load against a different design or database would silently mix
        two encrypted stores, so that is a hard
        :class:`~repro.common.errors.LoadJournalError`.
        """
        if not self.events:
            self._append({"event": "begin", "fingerprint": fingerprint})
            return False
        head = self.events[0]
        if head.get("event") != "begin":
            raise LoadJournalError(f"journal {self.path} does not start with begin")
        if head.get("fingerprint") != fingerprint:
            raise LoadJournalError(
                f"journal {self.path} belongs to a different load "
                f"(fingerprint {head.get('fingerprint')!r}, expected "
                f"{fingerprint!r})"
            )
        return True

    def note_table_created(self, table: str) -> None:
        if not self._has("table_created", table):
            self._append({"event": "table_created", "table": table})

    def note_batch(self, table: str, rows_done: int) -> None:
        self._append({"event": "batch", "table": table, "rows_done": rows_done})

    def note_table_done(self, table: str) -> None:
        if not self._has("table_done", table):
            self._append({"event": "table_done", "table": table})

    def note_load_done(self) -> None:
        if not any(e["event"] == "load_done" for e in self.events):
            self._append({"event": "load_done"})

    # -- queries --------------------------------------------------------------

    def _has(self, kind: str, table: str) -> bool:
        return any(
            e["event"] == kind and e.get("table") == table for e in self.events
        )

    def rows_recorded(self, table: str) -> int:
        """Highest committed-row watermark the journal saw (advisory:
        the loader trusts ``backend.row_count`` over this)."""
        return max(
            (
                e.get("rows_done", 0)
                for e in self.events
                if e["event"] == "batch" and e.get("table") == table
            ),
            default=0,
        )

    @property
    def complete(self) -> bool:
        return any(e["event"] == "load_done" for e in self.events)

    # -- homomorphic ciphertext files -----------------------------------------

    def save_hom(self, file) -> None:
        """Persist a packed ciphertext file atomically, then log it."""
        target = os.path.join(self.directory, _hom_filename(file.name))
        tmp = target + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(file, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        if not any(
            e["event"] == "hom_saved" and e.get("file") == file.name
            for e in self.events
        ):
            self._append({"event": "hom_saved", "file": file.name})

    def load_hom(self, name: str):
        """The pickled ciphertext file for ``name``, or None if absent."""
        target = os.path.join(self.directory, _hom_filename(name))
        if not os.path.exists(target):
            return None
        try:
            with open(target, "rb") as fh:
                return pickle.load(fh)
        except Exception as exc:
            raise LoadJournalError(
                f"corrupt saved ciphertext file {target}: {exc}"
            ) from exc
