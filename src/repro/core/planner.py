"""The MONOMI planner: choose the best split execution plan for one query.

Given a physical design (§6.2 step 2-3): compute the query's EncSet units,
enumerate the power set of the units available in the design (with §6.3
pruning), run Algorithm 1 for each subset, price each plan with the cost
model (§6.4), and keep the cheapest.

With ``optimizing_planner`` off this degrades to the Execution-Greedy
strategy the paper compares against (§8.3): use every available scheme,
push everything pushable to the server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanningError, UnsupportedQueryError
from repro.core.candidates import (
    base_design_for_loaded,
    build_candidate,
    conflicting_hom_variants,
    unit_subsets,
    usable_units,
)
from repro.core.cost import CostBreakdown, MonomiCostModel
from repro.core.design import PhysicalDesign, TechniqueFlags
from repro.core.encset import EncSetExtractor, Unit
from repro.core.plan import SplitPlan
from repro.core.splitter import StatsMax, generate_query_plan
from repro.engine.schema import TableSchema
from repro.sql import ast


@dataclass
class PlannedQuery:
    plan: SplitPlan
    cost: CostBreakdown
    chosen_units: tuple[Unit, ...]
    candidates_tried: int


class Planner:
    def __init__(
        self,
        design: PhysicalDesign,
        schemas: dict[str, TableSchema],
        provider,
        cost_model: MonomiCostModel,
        flags: TechniqueFlags = TechniqueFlags(),
        stats_max: StatsMax | None = None,
        plain_db=None,
    ) -> None:
        self.design = design
        self.schemas = schemas
        self.provider = provider
        self.cost_model = cost_model
        self.flags = flags
        self.stats_max = stats_max
        self.plain_db = plain_db
        self.extractor = EncSetExtractor(schemas, flags)
        self._base = base_design_for_loaded(design)

    def plan(self, query: ast.Select) -> PlannedQuery:
        """Pick the best plan for a normalized query."""
        units = usable_units(self.extractor.extract(query), self.design)
        if not self.flags.optimizing_planner:
            plan = self._plan_with(query, tuple(units))
            if plan is None:
                plan = self._plan_with(query, ())
            if plan is None:
                raise PlanningError("query has no feasible plan under this design")
            return PlannedQuery(plan, self.cost_model.plan_cost(plan), tuple(units), 1)

        best: PlannedQuery | None = None
        tried = 0
        for subset in unit_subsets(units):
            if conflicting_hom_variants(subset):
                continue
            plan = self._plan_with(query, subset)
            if plan is None:
                continue
            tried += 1
            cost = self.cost_model.plan_cost(plan)
            if best is None or cost.total_seconds < best.cost.total_seconds:
                best = PlannedQuery(plan, cost, subset, tried)
        if best is None:
            raise PlanningError("query has no feasible plan under this design")
        best.candidates_tried = tried
        return best

    def plan_with_units(
        self, query: ast.Select, units: tuple[Unit, ...]
    ) -> PlannedQuery:
        """Plan with a fixed unit subset, skipping the power-set search.

        The prepared-statement path uses this to re-plan a parameterized
        query under the unit choice its first execution already paid the
        full enumeration for: only Algorithm 1 and literal encryption
        re-run, pricing exactly one candidate.  Falls back to the empty
        subset (ship-everything) when the cached units no longer yield a
        feasible plan for the new literals (e.g. an OPE constant out of
        domain).
        """
        plan = self._plan_with(query, tuple(units))
        if plan is None and units:
            units = ()
            plan = self._plan_with(query, ())
        if plan is None:
            raise PlanningError("query has no feasible plan under this design")
        return PlannedQuery(
            plan, self.cost_model.plan_cost(plan), tuple(units), 1
        )

    def _plan_with(self, query: ast.Select, subset: tuple[Unit, ...]) -> SplitPlan | None:
        candidate = build_candidate(self._base, subset, self.flags, loaded=self.design)
        try:
            return generate_query_plan(
                query,
                candidate,
                self.schemas,
                self.provider,
                self.flags,
                self.stats_max,
                plain_db=self.plain_db,
            )
        except (PlanningError, UnsupportedQueryError):
            return None
