"""Query normalization before planning.

Three rewrites run on every incoming query (recursing into subqueries):

* **parameter binding** — ``:1``-style parameters become literals (the
  planner must encrypt constants, so they have to be known);
* **AVG expansion** — ``avg(x)`` becomes ``sum(x) / count(x)``, so the
  planner only reasons about SUM and COUNT (the paper's designs likewise
  precompute sums and counts rather than averages);
* **constant folding** — literal arithmetic, in particular date ± interval
  (``DATE '1998-12-01' - INTERVAL '90' DAY``), folds to a literal so it can
  be encrypted as a DET/OPE constant.
"""

from __future__ import annotations

import datetime
from dataclasses import replace

from repro.common.errors import PlanningError, UnsupportedQueryError
from repro.sql import ast, parse


def normalize_for_execution(
    sql: "str | ast.Select", params: dict[str, object] | None = None
) -> ast.Select:
    """Parse (if text), normalize, and reject unsupported shapes.

    The one entry gate shared by every execution path — ``MonomiClient``
    and the service layer — so the normalization rules and the paper-§7
    multi-pattern-LIKE rejection live in exactly one place.
    """
    query = parse(sql) if isinstance(sql, str) else sql
    query = normalize_query(query, params)
    if has_multi_pattern_like(query):
        raise UnsupportedQueryError(
            "multi-pattern LIKE is not supported (paper §7)"
        )
    return query


def normalize_dml(
    statement: "ast.Insert | ast.Update | ast.Delete",
    params: dict[str, object] | None = None,
) -> "ast.Insert | ast.Update | ast.Delete":
    """Normalize a DML statement: bind parameters and fold constants.

    The AVG rewrite never applies (DML expressions are scalar); the
    multi-pattern-LIKE gate does — an UPDATE/DELETE predicate runs
    through the same client-side evaluator as a SELECT's residual.
    """
    bound = params or {}
    statement = statement.map_expressions(
        lambda e: ast.transform(e, lambda n: _rewrite_node(n, bound))
    )
    where = getattr(statement, "where", None)
    if where is not None:
        probe = ast.Select(
            items=(ast.SelectItem(ast.Literal(1)),), where=where
        )
        if has_multi_pattern_like(probe):
            raise UnsupportedQueryError(
                "multi-pattern LIKE is not supported (paper §7)"
            )
    return statement


def normalize_query(query: ast.Select, params: dict[str, object] | None = None) -> ast.Select:
    params = params or {}

    def rewrite_expr(expr: ast.Expr) -> ast.Expr:
        expr = ast.transform(expr, lambda e: _rewrite_node(e, params))
        return expr

    def rewrite_select(q: ast.Select) -> ast.Select:
        q = q.map_expressions(rewrite_expr)
        q = _rewrite_subqueries(q, rewrite_select)
        return q

    return rewrite_select(query)


def _rewrite_node(expr: ast.Expr, params: dict[str, object]) -> ast.Expr:
    if isinstance(expr, ast.Param):
        if expr.name not in params:
            raise PlanningError(f"unbound parameter :{expr.name}")
        return ast.Literal(params[expr.name])
    if isinstance(expr, ast.FuncCall) and expr.name == "avg" and len(expr.args) == 1:
        arg = expr.args[0]
        return ast.BinOp(
            "/",
            ast.FuncCall("sum", (arg,), distinct=expr.distinct),
            ast.FuncCall("count", (arg,), distinct=expr.distinct),
        )
    folded = _fold_constant(expr)
    return folded if folded is not None else expr


def _fold_constant(expr: ast.Expr) -> ast.Expr | None:
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-", "*", "/"):
        left, right = expr.left, expr.right
        lv = left.value if isinstance(left, ast.Literal) else (left if isinstance(left, ast.Interval) else None)
        rv = right.value if isinstance(right, ast.Literal) else (right if isinstance(right, ast.Interval) else None)
        if lv is None or rv is None:
            return None
        if isinstance(lv, bool) or isinstance(rv, bool):
            return None
        try:
            from repro.engine.eval import _eval_arith

            value = _eval_arith(expr.op, lv, rv)
        except Exception:
            return None
        if isinstance(value, (int, float, datetime.date, str)):
            return ast.Literal(value)
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        if isinstance(expr.operand, ast.Literal) and isinstance(
            expr.operand.value, (int, float)
        ):
            return ast.Literal(-expr.operand.value)
    return None


def _rewrite_subqueries(query: ast.Select, rewrite_select) -> ast.Select:
    """Recurse normalization into subqueries in expressions and FROM."""

    def expr_walk(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.ScalarSubquery):
            return ast.ScalarSubquery(rewrite_select(expr.query))
        if isinstance(expr, ast.InSubquery):
            return ast.InSubquery(expr.needle, rewrite_select(expr.query), expr.negated)
        if isinstance(expr, ast.Exists):
            return ast.Exists(rewrite_select(expr.query), expr.negated)
        return expr

    query = query.map_expressions(lambda e: ast.transform(e, expr_walk))
    new_from = tuple(_rewrite_ref(ref, rewrite_select) for ref in query.from_items)
    return replace(query, from_items=new_from)


def _rewrite_ref(ref: ast.TableRef, rewrite_select) -> ast.TableRef:
    if isinstance(ref, ast.SubqueryRef):
        return ast.SubqueryRef(rewrite_select(ref.query), ref.alias)
    if isinstance(ref, ast.Join):
        condition = ref.condition
        if condition is not None:
            def expr_walk(expr: ast.Expr) -> ast.Expr:
                if isinstance(expr, ast.ScalarSubquery):
                    return ast.ScalarSubquery(rewrite_select(expr.query))
                if isinstance(expr, ast.InSubquery):
                    return ast.InSubquery(expr.needle, rewrite_select(expr.query), expr.negated)
                if isinstance(expr, ast.Exists):
                    return ast.Exists(rewrite_select(expr.query), expr.negated)
                return expr

            condition = ast.transform(condition, expr_walk)
        return ast.Join(
            _rewrite_ref(ref.left, rewrite_select),
            _rewrite_ref(ref.right, rewrite_select),
            ref.kind,
            condition,
        )
    return ref


def has_multi_pattern_like(query: ast.Select) -> bool:
    """Detect the multi-pattern LIKE shapes the prototype rejects (§7)."""

    found = False

    def check_expr(expr: ast.Expr) -> ast.Expr:
        nonlocal found
        if isinstance(expr, ast.Like) and isinstance(expr.pattern, ast.Literal):
            pattern = expr.pattern.value
            if isinstance(pattern, str) and pattern.strip("%").count("%") > 0:
                found = True
        for sub in ast.find_subqueries(expr):
            if has_multi_pattern_like(sub):
                found = True
        return expr

    for item in query.items:
        ast.transform(item.expr, check_expr)
    if query.where is not None:
        ast.transform(query.where, check_expr)
    if query.having is not None:
        ast.transform(query.having, check_expr)
    for ref in query.from_items:
        if isinstance(ref, ast.SubqueryRef) and has_multi_pattern_like(ref.query):
            found = True
        if isinstance(ref, ast.Join):
            for side in (ref.left, ref.right):
                if isinstance(side, ast.SubqueryRef) and has_multi_pattern_like(side.query):
                    found = True
    return found
