"""Database loader: encrypt a plaintext database under a physical design.

Produces the untrusted server's state (Figure 1's "Encrypted database"):

* one encrypted table per plaintext table, holding every encrypted column
  copy the design calls for (§7: "one or more copies of every column ...
  based on the number of encryption schemes chosen");
* a plain ``row_id`` column on tables that participate in homomorphic
  groups (§7), pointing into packed Paillier ciphertext files kept outside
  the tables.

Before loading, :func:`complete_design` guarantees every base column has at
least one client-decryptable representation (RND if nothing stronger was
requested) — MONOMI never stores plaintext on the server (§3).
"""

from __future__ import annotations

import os
import random

from repro.common.errors import ConfigError, DesignError, LoadJournalError
from repro.common.retry import RetryPolicy, retry_call
from repro.core.design import EncEntry, HomGroup, PhysicalDesign, normalize_expr
from repro.core.loadjournal import LoadJournal
from repro.core.encdata import CryptoProvider
from repro.core.schemes import Scheme
from repro.core.typing import infer_type
from repro.crypto.packing import PackedLayout
from repro.engine.catalog import Database
from repro.engine.eval import EvalContext, Scope, compile_expr
from repro.engine.schema import ColumnDef, TableSchema
from repro.sql import ast, parse_expression

ROW_ID_COLUMN = "row_id"

#: Rows per committed insert on the journaled (crash-safe) load path.
DEFAULT_LOAD_BATCH_ROWS = 256


def insert_rows_idempotent(
    backend, table_name: str, rows: list[tuple], policy: RetryPolicy, rng,
    on_retry=None,
) -> None:
    """Insert ``rows`` exactly once, surviving faults on *either* side of
    the apply.

    A transient error can strike before the server applied anything — a
    plain retry is then safe — or **after** it committed (the lost-ack
    fault): a plain retry would double-insert the whole batch.  Each
    attempt therefore re-reads the backend's row count against the
    watermark captured before the first attempt and sends only what is
    actually missing:

    * delta == len(rows): the previous attempt fully applied; done.
    * delta == 0: nothing landed; send the full batch.
    * 0 < delta < len(rows): a partial apply.  Backends whose batch
      commit is a prefix of the request (``supports_prefix_resume``)
      resume from ``rows[delta:]``; for non-prefix backends (sharded:
      per-bucket commits) the committed subset is unknowable from a
      count, so this raises a fatal :class:`ConfigError` instead of
      silently corrupting the table — the caller must rebuild.

    Backends without ``row_count`` fall back to the plain retry (their
    transactional insert makes delta-tracking unnecessary only if no
    fault can strike after commit; third-party callers keep the old
    contract).
    """
    rows = list(rows)
    if not rows:
        return
    try:
        watermark = backend.row_count(table_name)
    except ConfigError:
        watermark = None

    def attempt() -> None:
        to_send = rows
        if watermark is not None:
            delta = backend.row_count(table_name) - watermark
            if delta == len(rows):
                return  # Fully applied; only the ack was lost.
            if delta:
                if not getattr(backend, "supports_prefix_resume", True):
                    raise ConfigError(
                        f"insert into {table_name!r} partially applied "
                        f"({delta} of {len(rows)} rows) on a backend "
                        "without prefix commits; cannot resume safely"
                    )
                if not 0 < delta < len(rows):
                    raise ConfigError(
                        f"table {table_name!r} shrank or overshot during "
                        f"a retried insert (delta {delta} of {len(rows)})"
                    )
                to_send = rows[delta:]
        backend.insert_rows(table_name, to_send)

    retry_call(attempt, policy, rng=rng, on_retry=on_retry)


def complete_design(design: PhysicalDesign, plain_db: Database) -> PhysicalDesign:
    """Guarantee every base column has a cheap client-decryptable copy.

    The paper's prototype stores every column "with at most deterministic
    encryption" (§7): DET is the space-efficient fallback (FFX keeps
    integers integer-sized), which is what makes a space budget of S = 1
    equivalent to an all-DET database (§6.5).  Floats cannot go through
    FFX, so they fall back to RND.
    """
    completed = design.copy()
    for name, table in plain_db.tables.items():
        for col in table.schema.columns:
            expr_sql = normalize_expr(ast.Column(col.name))
            fetchable = {
                e.scheme
                for e in completed.entries
                if e.table == name
                and e.expr_sql == expr_sql
                and e.scheme in (Scheme.RND, Scheme.DET)
            }
            if not fetchable:
                scheme = Scheme.RND if col.type == "float" else Scheme.DET
                completed.add(name, ast.Column(col.name), scheme)
    return completed


def server_column_type(entry: EncEntry, plain_type: str) -> str:
    """Engine column type for an encrypted column copy."""
    if entry.scheme is Scheme.RND:
        return "bytes"
    if entry.scheme is Scheme.OPE:
        return "int"
    if entry.scheme is Scheme.SEARCH:
        return "tagset"
    if entry.scheme is Scheme.DET:
        if plain_type in ("int", "bool", "date"):
            return "int"  # FFX keeps integers integers (zero expansion).
        # Text: short values FFX to integers, long values CMC to bytes.
        return "any"
    raise DesignError(f"no server column for scheme {entry.scheme}")


class EncryptedLoader:
    """Builds the encrypted server state behind a :class:`ServerBackend`."""

    def __init__(self, plain_db: Database, provider: CryptoProvider) -> None:
        self.plain_db = plain_db
        self.provider = provider
        # Transient insert faults (SQLITE_BUSY, injected chaos) retry here.
        # A fault can also strike *after* the batch committed (lost ack),
        # so retries go through `insert_rows_idempotent`: each attempt
        # checks the backend's row count against a pre-insert watermark
        # and re-sends only rows that actually went missing.
        self.retry_policy = RetryPolicy()
        self._retry_rng = random.Random(0x5EED)

    def load(self, design: PhysicalDesign) -> Database:
        """Encrypt into a fresh in-memory server (pre-backend convention)."""
        from repro.server.inmemory import InMemoryBackend

        backend = InMemoryBackend(Database(name=f"{self.plain_db.name}_enc"))
        self.load_into(backend, design)
        return backend.database

    def load_into(
        self,
        backend,
        design: PhysicalDesign,
        journal: LoadJournal | str | os.PathLike | None = None,
        batch_rows: int = DEFAULT_LOAD_BATCH_ROWS,
    ):
        """Encrypt the database under ``design`` into any backend.

        Without a ``journal``, each table materializes as one bulk insert
        (the backend's one write path — ``executemany`` for SQLite,
        ``insert_many`` in memory) and packed homomorphic groups install
        as ciphertext files.

        With a ``journal`` (a :class:`~repro.core.loadjournal.LoadJournal`
        or a directory path for one), the load becomes **crash-safe and
        resumable**: rows commit in ``batch_rows`` batches, progress is
        journaled after every commit, and packed Paillier files persist to
        the journal directory the moment they are encrypted.  Re-running
        the same call over the same journal after a crash encrypts only
        the rows the backend does not already hold — committed work is
        never re-encrypted and never double-inserted — and re-installs
        saved ciphertext files without repeating the Paillier packing.
        """
        design = complete_design(design, self.plain_db)
        if journal is None:
            for table_name in sorted(self.plain_db.tables):
                self._load_table(backend, table_name, design)
            return backend
        if not isinstance(journal, LoadJournal):
            journal = LoadJournal(journal)
        fingerprint = f"{self.plain_db.name}:{design.fingerprint()}"
        journal.begin(fingerprint)
        for table_name in sorted(self.plain_db.tables):
            self._load_table_journaled(
                backend, table_name, design, journal, batch_rows
            )
        journal.note_load_done()
        return backend

    # -- per-table -----------------------------------------------------------

    def _table_layout(self, table_name: str, design: PhysicalDesign):
        """Everything the load of one table derives from the design:
        (plain table, non-HOM entries, parsed exprs, hom groups,
        encrypted schema, evaluation scope)."""
        plain = self.plain_db.table(table_name)
        schemas = {table_name: plain.schema}
        entries = [
            e for e in design.table_entries(table_name) if e.scheme is not Scheme.HOM
        ]
        hom_groups = [g for g in design.hom_groups if g.table == table_name]

        columns: list[ColumnDef] = []
        exprs: list[ast.Expr] = []
        for entry in entries:
            expr = parse_expression(entry.expr_sql)
            plain_type = infer_type(expr, schemas)
            columns.append(
                ColumnDef(entry.column_name, server_column_type(entry, plain_type))
            )
            exprs.append(expr)
        if hom_groups:
            columns.append(ColumnDef(ROW_ID_COLUMN, "int"))

        enc_schema = TableSchema(name=table_name, columns=tuple(columns))
        scope = Scope([(table_name, c) for c in plain.schema.column_names])
        return plain, entries, exprs, hom_groups, enc_schema, scope

    def _encrypt_span(
        self,
        plain,
        entries,
        exprs,
        scope: Scope,
        start: int,
        stop: int,
        with_row_id: bool,
    ) -> list[tuple]:
        """Encrypt rows ``[start, stop)`` of ``plain`` into server tuples.

        Columnar within the span: evaluate each design expression over the
        span (compiled once), encrypt the resulting plaintext column
        through the batch crypto APIs (one scheme dispatch per column),
        then transpose back to rows.  With CryptoProvider(workers=N) each
        column batch shards across the provider's process pool, so load
        time scales with cores.
        """
        ctx = EvalContext()
        span = plain.rows[start:stop]
        enc_columns: list[list] = []
        for entry, expr in zip(entries, exprs):
            fn = compile_expr(expr, scope, ctx)
            plain_column = [fn(row) for row in span]
            enc_columns.append(self._encrypt_column(plain_column, entry.scheme))
        if with_row_id:
            enc_columns.append(list(range(start, stop)))
        if enc_columns:
            return list(zip(*enc_columns))
        return [() for _ in span]

    def _insert_with_retry(self, backend, table_name: str, rows: list[tuple]) -> None:
        insert_rows_idempotent(
            backend, table_name, rows, self.retry_policy, self._retry_rng
        )

    def _load_table(self, backend, table_name: str, design: PhysicalDesign) -> None:
        plain, entries, exprs, hom_groups, enc_schema, scope = self._table_layout(
            table_name, design
        )
        backend.create_table(enc_schema)
        rows = self._encrypt_span(
            plain, entries, exprs, scope, 0, plain.num_rows, bool(hom_groups)
        )
        self._insert_with_retry(backend, table_name, rows)
        for group in hom_groups:
            file = self._build_hom_file(group, plain, scope)
            backend.add_ciphertext_file(file)

    def _load_table_journaled(
        self,
        backend,
        table_name: str,
        design: PhysicalDesign,
        journal: LoadJournal,
        batch_rows: int,
    ) -> None:
        plain, entries, exprs, hom_groups, enc_schema, scope = self._table_layout(
            table_name, design
        )
        # The backend is the source of truth for what survived a crash:
        # its committed row count, not the journal's watermark, decides
        # where encryption resumes (the journal may trail by one batch if
        # the crash hit between commit and journal append — resuming from
        # the backend count neither re-encrypts nor double-inserts).
        if backend.has_table(table_name):
            backend.adopt_table(enc_schema)
        else:
            backend.create_table(enc_schema)
        journal.note_table_created(table_name)

        done = backend.row_count(table_name)
        if done > plain.num_rows:
            raise LoadJournalError(
                f"table {table_name!r} holds {done} rows but the plaintext "
                f"has only {plain.num_rows} — journal/backend mismatch"
            )
        with_row_id = bool(hom_groups)
        for start in range(done, plain.num_rows, batch_rows):
            stop = min(start + batch_rows, plain.num_rows)
            rows = self._encrypt_span(
                plain, entries, exprs, scope, start, stop, with_row_id
            )
            self._insert_with_retry(backend, table_name, rows)
            journal.note_batch(table_name, stop)
        journal.note_table_done(table_name)

        # Homomorphic files re-install even for already-done tables: some
        # backends keep the ciphertext store in process memory, so a fresh
        # process resuming the load must put the saved files back.
        store = backend.ciphertext_store
        for group in hom_groups:
            if group.file_name in store.names():
                continue
            file = journal.load_hom(group.file_name)
            if file is None:
                file = self._build_hom_file(group, plain, scope)
                journal.save_hom(file)
            backend.add_ciphertext_file(file)

    def _encrypt_column(self, values: list, scheme: Scheme) -> list:
        if scheme is Scheme.SEARCH:
            for value in values:
                if value is not None and not isinstance(value, str):
                    raise DesignError("SEARCH applies to text columns only")
            return self.provider.search_encrypt_batch(values)
        return self.provider.encrypt_batch(values, scheme.value)

    # -- homomorphic groups ------------------------------------------------------

    def _build_hom_file(self, group: HomGroup, plain, scope: Scope):
        from repro.storage.ciphertext_store import CiphertextFile

        ctx = EvalContext()
        exprs = [parse_expression(sql) for sql in group.expr_sqls]
        fns = [compile_expr(expr, scope, ctx) for expr in exprs]
        # Gather plaintext values (None -> 0: additive identity).
        matrix: list[list[int]] = [[] for _ in plain.rows]
        for expr, fn in zip(exprs, fns):
            for values, row in zip(matrix, plain.rows):
                value = fn(row)
                if value is None:
                    value = 0
                elif not isinstance(value, int) or isinstance(value, bool):
                    raise DesignError(
                        f"homomorphic column {group.table}:{expr!r} must be "
                        f"integer-valued, got {value!r}"
                    )
                elif value < 0:
                    raise DesignError(
                        "homomorphic packing requires non-negative values "
                        f"(got {value} in {group.table})"
                    )
                values.append(value)

        column_bits = tuple(
            max(1, max((row[i] for row in matrix), default=0).bit_length())
            for i in range(len(exprs))
        )
        pad_bits = max(4, plain.num_rows.bit_length())
        public = self.provider.paillier_public
        layout = PackedLayout(
            column_bits=column_bits,
            pad_bits=pad_bits,
            plaintext_bits=public.plaintext_bits,
        )
        rows_per_ct = min(group.rows_per_ciphertext, layout.rows_per_ciphertext)
        layout = PackedLayout(
            column_bits=column_bits,
            pad_bits=pad_bits,
            plaintext_bits=min(public.plaintext_bits, layout.row_bits * rows_per_ct),
        )
        file = CiphertextFile(
            name=group.file_name,
            public_key=public,
            layout=layout,
            column_names=group.expr_sqls,
            num_rows=plain.num_rows,
        )
        plaintexts = [
            layout.encode_rows(matrix[start : start + rows_per_ct])
            for start in range(0, len(matrix), rows_per_ct)
        ]
        # Bulk Paillier: fixed-base randomness pool instead of a full-width
        # r^n exponentiation per ciphertext (~15x at 2,048-bit keys).
        file.ciphertexts.extend(self.provider.paillier_encrypt_batch(plaintexts))
        return file
