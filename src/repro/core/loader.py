"""Database loader: encrypt a plaintext database under a physical design.

Produces the untrusted server's state (Figure 1's "Encrypted database"):

* one encrypted table per plaintext table, holding every encrypted column
  copy the design calls for (§7: "one or more copies of every column ...
  based on the number of encryption schemes chosen");
* a plain ``row_id`` column on tables that participate in homomorphic
  groups (§7), pointing into packed Paillier ciphertext files kept outside
  the tables.

Before loading, :func:`complete_design` guarantees every base column has at
least one client-decryptable representation (RND if nothing stronger was
requested) — MONOMI never stores plaintext on the server (§3).
"""

from __future__ import annotations

from repro.common.errors import DesignError
from repro.core.design import EncEntry, HomGroup, PhysicalDesign, normalize_expr
from repro.core.encdata import CryptoProvider
from repro.core.schemes import Scheme
from repro.core.typing import infer_type
from repro.crypto.packing import PackedLayout
from repro.engine.catalog import Database
from repro.engine.eval import EvalContext, Scope, compile_expr
from repro.engine.schema import ColumnDef, TableSchema
from repro.sql import ast, parse_expression

ROW_ID_COLUMN = "row_id"


def complete_design(design: PhysicalDesign, plain_db: Database) -> PhysicalDesign:
    """Guarantee every base column has a cheap client-decryptable copy.

    The paper's prototype stores every column "with at most deterministic
    encryption" (§7): DET is the space-efficient fallback (FFX keeps
    integers integer-sized), which is what makes a space budget of S = 1
    equivalent to an all-DET database (§6.5).  Floats cannot go through
    FFX, so they fall back to RND.
    """
    completed = design.copy()
    for name, table in plain_db.tables.items():
        for col in table.schema.columns:
            expr_sql = normalize_expr(ast.Column(col.name))
            fetchable = {
                e.scheme
                for e in completed.entries
                if e.table == name
                and e.expr_sql == expr_sql
                and e.scheme in (Scheme.RND, Scheme.DET)
            }
            if not fetchable:
                scheme = Scheme.RND if col.type == "float" else Scheme.DET
                completed.add(name, ast.Column(col.name), scheme)
    return completed


def server_column_type(entry: EncEntry, plain_type: str) -> str:
    """Engine column type for an encrypted column copy."""
    if entry.scheme is Scheme.RND:
        return "bytes"
    if entry.scheme is Scheme.OPE:
        return "int"
    if entry.scheme is Scheme.SEARCH:
        return "tagset"
    if entry.scheme is Scheme.DET:
        if plain_type in ("int", "bool", "date"):
            return "int"  # FFX keeps integers integers (zero expansion).
        # Text: short values FFX to integers, long values CMC to bytes.
        return "any"
    raise DesignError(f"no server column for scheme {entry.scheme}")


class EncryptedLoader:
    """Builds the encrypted server state behind a :class:`ServerBackend`."""

    def __init__(self, plain_db: Database, provider: CryptoProvider) -> None:
        self.plain_db = plain_db
        self.provider = provider

    def load(self, design: PhysicalDesign) -> Database:
        """Encrypt into a fresh in-memory server (pre-backend convention)."""
        from repro.server.inmemory import InMemoryBackend

        backend = InMemoryBackend(Database(name=f"{self.plain_db.name}_enc"))
        self.load_into(backend, design)
        return backend.database

    def load_into(self, backend, design: PhysicalDesign):
        """Encrypt the database under ``design`` into any backend.

        Each table materializes as one bulk insert (the backend's one write
        path — ``executemany`` for SQLite, ``insert_many`` in memory), and
        packed homomorphic groups install as ciphertext files.
        """
        design = complete_design(design, self.plain_db)
        for table_name in sorted(self.plain_db.tables):
            self._load_table(backend, table_name, design)
        return backend

    # -- per-table -----------------------------------------------------------

    def _load_table(self, backend, table_name: str, design: PhysicalDesign) -> None:
        plain = self.plain_db.table(table_name)
        schemas = {table_name: plain.schema}
        entries = [
            e for e in design.table_entries(table_name) if e.scheme is not Scheme.HOM
        ]
        hom_groups = [g for g in design.hom_groups if g.table == table_name]

        columns: list[ColumnDef] = []
        exprs: list[ast.Expr] = []
        plain_types: list[str] = []
        for entry in entries:
            expr = parse_expression(entry.expr_sql)
            plain_type = infer_type(expr, schemas)
            columns.append(
                ColumnDef(entry.column_name, server_column_type(entry, plain_type))
            )
            exprs.append(expr)
            plain_types.append(plain_type)
        if hom_groups:
            columns.append(ColumnDef(ROW_ID_COLUMN, "int"))

        enc_schema = TableSchema(name=table_name, columns=tuple(columns))
        backend.create_table(enc_schema)

        scope = Scope([(table_name, c) for c in plain.schema.column_names])
        ctx = EvalContext()
        # Columnar load: evaluate each design expression over the whole
        # table (compiled once), encrypt the resulting plaintext column
        # through the batch crypto APIs (one scheme dispatch per column),
        # then transpose back and bulk-insert the encrypted rows.  With
        # CryptoProvider(workers=N) each column batch shards across the
        # provider's process pool, so load time scales with cores.
        enc_columns: list[list] = []
        for entry, expr in zip(entries, exprs):
            fn = compile_expr(expr, scope, ctx)
            plain_column = [fn(row) for row in plain.rows]
            enc_columns.append(self._encrypt_column(plain_column, entry.scheme))
        if hom_groups:
            enc_columns.append(list(range(plain.num_rows)))

        if enc_columns:
            backend.insert_rows(table_name, zip(*enc_columns))
        else:
            backend.insert_rows(table_name, (() for _ in range(plain.num_rows)))

        for group in hom_groups:
            self._load_hom_group(backend, group, plain, scope)

    def _encrypt_column(self, values: list, scheme: Scheme) -> list:
        if scheme is Scheme.SEARCH:
            for value in values:
                if value is not None and not isinstance(value, str):
                    raise DesignError("SEARCH applies to text columns only")
            return self.provider.search_encrypt_batch(values)
        return self.provider.encrypt_batch(values, scheme.value)

    # -- homomorphic groups ------------------------------------------------------

    def _load_hom_group(self, backend, group: HomGroup, plain, scope: Scope) -> None:
        from repro.storage.ciphertext_store import CiphertextFile

        ctx = EvalContext()
        exprs = [parse_expression(sql) for sql in group.expr_sqls]
        fns = [compile_expr(expr, scope, ctx) for expr in exprs]
        # Gather plaintext values (None -> 0: additive identity).
        matrix: list[list[int]] = [[] for _ in plain.rows]
        for expr, fn in zip(exprs, fns):
            for values, row in zip(matrix, plain.rows):
                value = fn(row)
                if value is None:
                    value = 0
                elif not isinstance(value, int) or isinstance(value, bool):
                    raise DesignError(
                        f"homomorphic column {group.table}:{expr!r} must be "
                        f"integer-valued, got {value!r}"
                    )
                elif value < 0:
                    raise DesignError(
                        "homomorphic packing requires non-negative values "
                        f"(got {value} in {group.table})"
                    )
                values.append(value)

        column_bits = tuple(
            max(1, max((row[i] for row in matrix), default=0).bit_length())
            for i in range(len(exprs))
        )
        pad_bits = max(4, plain.num_rows.bit_length())
        public = self.provider.paillier_public
        layout = PackedLayout(
            column_bits=column_bits,
            pad_bits=pad_bits,
            plaintext_bits=public.plaintext_bits,
        )
        rows_per_ct = min(group.rows_per_ciphertext, layout.rows_per_ciphertext)
        layout = PackedLayout(
            column_bits=column_bits,
            pad_bits=pad_bits,
            plaintext_bits=min(public.plaintext_bits, layout.row_bits * rows_per_ct),
        )
        file = CiphertextFile(
            name=group.file_name,
            public_key=public,
            layout=layout,
            column_names=group.expr_sqls,
            num_rows=plain.num_rows,
        )
        plaintexts = [
            layout.encode_rows(matrix[start : start + rows_per_ct])
            for start in range(0, len(matrix), rows_per_ct)
        ]
        # Bulk Paillier: fixed-base randomness pool instead of a full-width
        # r^n exponentiation per ciphertext (~15x at 2,048-bit keys).
        file.ciphertexts.extend(self.provider.paillier_encrypt_batch(plaintexts))
        backend.add_ciphertext_file(file)
