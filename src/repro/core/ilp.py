"""ILP formulation for the space-constrained designer (§6.5).

Minimize   Σ_i Σ_j cost(i,j) · x_ij
subject to Σ_j x_ij = 1                          (one plan per query)
           ‖items_ij‖ · x_ij − Σ_{k∈items_ij} e_k ≤ 0   (plans imply columns)
           Σ_k e_k · encsize(k) ≤ S · plainsize − basesize
           x_ij, e_k ∈ {0, 1}

``items`` are candidate encrypted columns (non-HOM pairs) and candidate
packed Paillier groups; the base design (the DET fallback copy of every
column) is a constant ``basesize`` outside the optimization, so a DET pair
on a plain column has zero *marginal* size — exactly the paper's
observation that S = 1 admits the all-DET design.

Solved with ``scipy.optimize.milp`` (HiGHS).  A small exhaustive-search
fallback handles environments without scipy and doubles as a correctness
check in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.common.errors import InfeasibleDesignError


@dataclass(frozen=True)
class IlpCandidate:
    """One (query, unit-subset) plan choice."""

    query_index: int
    cost: float
    item_keys: frozenset


@dataclass
class IlpProblem:
    candidates: list[IlpCandidate]
    item_sizes: dict[object, float]  # item key -> marginal bytes
    space_budget: float  # S * plainsize - basesize

    def num_queries(self) -> int:
        return max(c.query_index for c in self.candidates) + 1 if self.candidates else 0


@dataclass
class IlpSolution:
    chosen: dict[int, IlpCandidate]  # query index -> picked candidate
    items: set  # item keys enabled
    objective: float
    used_bytes: float


def solve(problem: IlpProblem, use_scipy: bool = True) -> IlpSolution:
    if not problem.candidates:
        return IlpSolution({}, set(), 0.0, 0.0)
    if use_scipy:
        try:
            return _solve_scipy(problem)
        except ImportError:  # pragma: no cover - scipy is a dependency
            pass
    return solve_exhaustive(problem)


# ---------------------------------------------------------------------------
# scipy / HiGHS
# ---------------------------------------------------------------------------


def _solve_scipy(problem: IlpProblem) -> IlpSolution:
    from scipy.optimize import Bounds, LinearConstraint, milp

    candidates = problem.candidates
    items = sorted(problem.item_sizes, key=repr)
    item_index = {k: i for i, k in enumerate(items)}
    nx = len(candidates)
    ne = len(items)
    n = nx + ne

    costs = np.zeros(n)
    for i, candidate in enumerate(candidates):
        costs[i] = candidate.cost

    constraints = []
    # One plan per query.
    num_queries = problem.num_queries()
    a_eq = np.zeros((num_queries, n))
    for i, candidate in enumerate(candidates):
        a_eq[candidate.query_index, i] = 1.0
    constraints.append(LinearConstraint(a_eq, lb=1.0, ub=1.0))

    # Plan => items.
    rows = []
    for i, candidate in enumerate(candidates):
        if not candidate.item_keys:
            continue
        row = np.zeros(n)
        row[i] = float(len(candidate.item_keys))
        for key in candidate.item_keys:
            row[nx + item_index[key]] = -1.0
        rows.append(row)
    if rows:
        constraints.append(
            LinearConstraint(np.array(rows), lb=-np.inf, ub=0.0)
        )

    # Space.
    space_row = np.zeros(n)
    for key, size in problem.item_sizes.items():
        space_row[nx + item_index[key]] = size
    constraints.append(
        LinearConstraint(space_row.reshape(1, -1), lb=-np.inf, ub=problem.space_budget)
    )

    result = milp(
        c=costs,
        constraints=constraints,
        bounds=Bounds(0.0, 1.0),
        integrality=np.ones(n),
    )
    if not result.success or result.x is None:
        raise InfeasibleDesignError(
            f"ILP infeasible under space budget {problem.space_budget:.0f} bytes"
        )
    x = result.x
    chosen: dict[int, IlpCandidate] = {}
    for i, candidate in enumerate(candidates):
        if x[i] > 0.5:
            chosen[candidate.query_index] = candidate
    enabled = {items[j] for j in range(ne) if x[nx + j] > 0.5}
    used = sum(problem.item_sizes[k] for k in enabled)
    objective = sum(c.cost for c in chosen.values())
    return IlpSolution(chosen, enabled, objective, used)


# ---------------------------------------------------------------------------
# Exhaustive fallback (small instances / cross-check)
# ---------------------------------------------------------------------------


def solve_exhaustive(problem: IlpProblem, limit: int = 2_000_000) -> IlpSolution:
    by_query: dict[int, list[IlpCandidate]] = {}
    for candidate in problem.candidates:
        by_query.setdefault(candidate.query_index, []).append(candidate)
    queries = sorted(by_query)
    total = 1
    for q in queries:
        total *= len(by_query[q])
        if total > limit:
            raise InfeasibleDesignError(
                "exhaustive ILP fallback: instance too large"
            )
    best: IlpSolution | None = None
    for combo in product(*(by_query[q] for q in queries)):
        items: set = set()
        for candidate in combo:
            items |= candidate.item_keys
        used = sum(problem.item_sizes[k] for k in items)
        if used > problem.space_budget + 1e-9:
            continue
        objective = sum(c.cost for c in combo)
        if best is None or objective < best.objective:
            best = IlpSolution(
                {c.query_index: c for c in combo}, items, objective, used
            )
    if best is None:
        raise InfeasibleDesignError(
            f"no design satisfies space budget {problem.space_budget:.0f} bytes"
        )
    return best
