"""Design sizing: projected server-side bytes for a candidate design.

The ILP designer's space constraint (§6.5) needs ``encsize(k)`` — the bytes
each candidate encrypted column would occupy — *before* anything is loaded.
Sizes are derived from plaintext statistics (row counts, average widths),
matching how the loader will actually materialize the design:

* DET: integers/dates via FFX stay integer-sized (8 bytes); text gets CMC
  framing (±1 byte, minimum one AES block);
* OPE: 8-byte ciphertext integers (we size big-int OPE ciphertexts by the
  configured expansion);
* RND: value bytes + 16-byte nonce;
* SEARCH: ~8 bytes per indexed tag (words + affixes, capped);
* HOM groups: ciphertext-file bytes = ceil(rows / rows_per_ct) × ct bytes.
"""

from __future__ import annotations

from repro.core.design import EncEntry, HomGroup, PhysicalDesign
from repro.core.encdata import CryptoProvider
from repro.core.loader import complete_design
from repro.core.schemes import Scheme
from repro.core.typing import infer_type
from repro.engine.catalog import Database
from repro.engine.cost import HomFileInfo
from repro.sql import parse_expression

_ROW_HEADER = 24


class DesignSizer:
    def __init__(self, plain_db: Database, provider: CryptoProvider) -> None:
        self.plain_db = plain_db
        self.provider = provider
        self._width_cache: dict[tuple[str, str], float] = {}

    # -- per-entry -----------------------------------------------------------------

    def entry_bytes(self, entry: EncEntry) -> float:
        """Projected total bytes for one encrypted column."""
        table = self.plain_db.table(entry.table)
        return table.num_rows * self.entry_row_bytes(entry)

    def entry_row_bytes(self, entry: EncEntry) -> float:
        plain_width, plain_type = self._plain_width(entry.table, entry.expr_sql)
        if entry.scheme is Scheme.DET:
            if plain_type in ("int", "bool", "date"):
                return 8.0  # FFX: zero expansion, stored as an int.
            if plain_width <= 13.0:
                return plain_width  # Short text FFX: format preserving.
            return plain_width + 1.0  # CMC framing.
        if entry.scheme is Scheme.OPE:
            return 9.0  # domain bits + expansion, stored as a big integer.
        if entry.scheme is Scheme.RND:
            return plain_width + 16.0  # CTR nonce.
        if entry.scheme is Scheme.SEARCH:
            # SearchCipher indexes every word (~len/6), every prefix and
            # suffix up to max_affix_len chars, and one exact tag; 8 bytes
            # per tag.
            from repro.crypto.search import DEFAULT_MAX_AFFIX

            affixes = 2.0 * min(plain_width, float(DEFAULT_MAX_AFFIX))
            words = plain_width / 6.0
            return (affixes + words + 1.0) * 8.0 + 2.0
        if entry.scheme is Scheme.HOM:
            return 0.0  # Accounted via the group's ciphertext file.
        raise ValueError(f"unknown scheme {entry.scheme}")

    def group_bytes(self, group: HomGroup) -> float:
        table = self.plain_db.table(group.table)
        info = self.group_info(group)
        num_cts = -(-table.num_rows // info.rows_per_ciphertext)
        return num_cts * info.ciphertext_bytes

    def group_info(self, group: HomGroup) -> HomFileInfo:
        """Predicted packing layout (rows/ct, ct bytes) for a group."""
        public = self.provider.paillier_public
        pad_bits = max(4, self.plain_db.table(group.table).num_rows.bit_length())
        row_bits = 0
        for expr_sql in group.expr_sqls:
            width_bits = self._value_bits(group.table, expr_sql)
            row_bits += width_bits + pad_bits
        fit = max(1, public.plaintext_bits // max(row_bits, 1))
        rows_per_ct = min(group.rows_per_ciphertext, fit)
        return HomFileInfo(rows_per_ct, public.ciphertext_bytes)

    # -- whole designs ---------------------------------------------------------------

    def design_bytes(self, design: PhysicalDesign) -> float:
        """Total projected server bytes (incl. RND fallbacks and row ids)."""
        completed = complete_design(design, self.plain_db)
        total = 0.0
        hom_tables = {g.table for g in completed.hom_groups}
        for table_name in self.plain_db.tables:
            table = self.plain_db.table(table_name)
            total += table.num_rows * _ROW_HEADER
            if table_name in hom_tables:
                total += table.num_rows * 8.0  # row_id column.
        for entry in completed.entries:
            if entry.scheme is not Scheme.HOM:
                total += self.entry_bytes(entry)
        for group in completed.hom_groups:
            total += self.group_bytes(group)
        return total

    def table_bytes(self, design: PhysicalDesign, table_name: str) -> float:
        """Projected heap size of one encrypted table (excl. hom files —
        those are charged when read, like the paper's separate files).

        Computed as the all-DET fallback baseline plus the marginal size of
        the design's extra entries, which avoids re-deriving the completed
        design for every candidate the designer prices.
        """
        total = self._baseline_table_bytes(table_name)
        table = self.plain_db.table(table_name)
        if any(g.table == table_name for g in design.hom_groups):
            total += table.num_rows * 8.0  # row_id column
        for entry in design.entries:
            if entry.table != table_name or entry.scheme is Scheme.HOM:
                continue
            if entry.scheme is Scheme.DET and not entry.is_precomputed:
                continue  # Coincides with the fallback copy.
            if entry.scheme is Scheme.RND and not entry.is_precomputed:
                continue  # Float columns: already in the baseline.
            total += self.entry_bytes(entry)
        return total

    def _baseline_table_bytes(self, table_name: str) -> float:
        cached = getattr(self, "_baseline_cache", None)
        if cached is None:
            cached = self._baseline_cache = {}
        if table_name in cached:
            return cached[table_name]
        table = self.plain_db.table(table_name)
        total = table.num_rows * float(_ROW_HEADER)
        from repro.sql import ast as sql_ast
        from repro.core.design import normalize_expr

        for column in table.schema.columns:
            scheme = Scheme.RND if column.type == "float" else Scheme.DET
            entry = EncEntry(
                table_name, normalize_expr(sql_ast.Column(column.name)), scheme
            )
            total += self.entry_bytes(entry)
        cached[table_name] = total
        return total

    def plaintext_bytes(self) -> float:
        return float(sum(t.total_bytes for t in self.plain_db.tables.values()))

    # -- plaintext statistics -----------------------------------------------------------

    def _plain_width(self, table_name: str, expr_sql: str) -> tuple[float, str]:
        key = (table_name, expr_sql)
        cached = self._width_cache.get(key)
        table = self.plain_db.table(table_name)
        expr = parse_expression(expr_sql)
        plain_type = infer_type(expr, {table_name: table.schema})
        if cached is not None:
            return cached, plain_type
        from repro.engine.eval import Env, EvalContext, Scope, evaluate
        from repro.storage.rowcodec import value_bytes

        scope = Scope([(table_name, c) for c in table.schema.column_names])
        ctx = EvalContext()
        sample = table.rows[: min(200, len(table.rows))]
        if not sample:
            width = 8.0
        else:
            total = 0
            for row in sample:
                value = evaluate(expr, Env(scope, row), ctx)
                total += value_bytes(value)
            width = total / len(sample)
        self._width_cache[key] = width
        return width, plain_type

    def _value_bits(self, table_name: str, expr_sql: str) -> int:
        """Max bit width of an integer expression over the table (sampled)."""
        from repro.engine.eval import Env, EvalContext, Scope, evaluate

        table = self.plain_db.table(table_name)
        expr = parse_expression(expr_sql)
        scope = Scope([(table_name, c) for c in table.schema.column_names])
        ctx = EvalContext()
        best = 1
        for row in table.rows[: min(500, len(table.rows))]:
            value = evaluate(expr, Env(scope, row), ctx)
            if isinstance(value, int) and not isinstance(value, bool):
                best = max(best, abs(value).bit_length())
        return best + 2  # Safety margin over the sample.
