"""Typed value encryption: the bridge between schemas and ciphers.

One :class:`CryptoProvider` owns every key, derived from a single master
key.  Design choices that mirror the paper's prototype:

* **DET and OPE keys are shared across columns of the same SQL type**, so
  deterministic equality works across tables (equi-joins) and OPE
  comparisons work between columns (e.g. TPC-H Q4's
  ``l_commitdate < l_receiptdate``).  CryptDB achieves the same with
  adjustable join keys; a shared key has the same leakage once all joins
  are allowed.
* **Integers encrypt with FFX** (zero expansion: int in, int out) — the
  §5.2 space optimization; strings use the CMC-style wide-block DET.
* **Dates** encrypt as days-since-epoch through FFX/OPE.
* **OPE on strings** order-preserves a fixed-length prefix (10 bytes);
  TPC-H's sorted string columns are distinguished within that prefix.
* Encryption results are memoized per value — analytical columns repeat
  values heavily, and the paper likewise caches repeated (de)cryptions
  (§8.1 uses a 512-entry decryption cache).  Ours are LRU caches bounded
  by ``cache_size`` so long-running loads cannot grow memory without
  limit.

Batch APIs
----------
Every scheme has a ``*_encrypt_batch`` / ``*_decrypt_batch`` companion that
processes a whole column with the scheme/type dispatch, cipher attribute
lookups, and cache accessors hoisted out of the per-value loop.  The batch
paths are element-wise identical to the scalar ones (property-tested),
including ``None`` passthrough; they exist because columnar loading and
client-side result decryption are throughput-bound (§8, Fig. 7).

The OPE and FFX batch paths go further than loop hoisting: LRU misses are
**deduplicated per batch** (a low-cardinality column decrypts each value
once per RowBlock) and handed to the ciphers' own column APIs —
:meth:`~repro.crypto.ope.OpeCipher.decrypt_batch`'s shared-tree descent
computes every shared tree pivot once per batch, and
:meth:`~repro.crypto.ffx.FFXInteger.decrypt_batch` loops Feistel rounds
over the whole column.  ``cache_stats()`` exposes hit/miss/eviction
counters for every value cache and OPE pivot cache so benchmarks can
report the amortization.

Multicore batches
-----------------
``CryptoProvider(workers=N)`` (default from ``MONOMI_WORKERS``, serial
otherwise) backs every batch API with a persistent process pool: batches
of at least :data:`PARALLEL_MIN_BATCH` values (:data:`PAILLIER_MIN_BATCH`
for Paillier, whose per-value cost is orders of magnitude higher) shard
into contiguous spans, one per worker, and re-merge in span order.  Each
worker holds its own provider built once at pool startup from the same
master key (:mod:`repro.core.cryptoworker`), so sharded results are
element-wise identical to serial ones for every deterministic scheme;
Paillier encryption randomness differs per worker by design, exactly as
it differs between two serial runs.  Small batches, ``workers=1``, and
environments where process pools cannot start all take the serial path —
the parallel layer never changes results, only wall-clock time.  Worker
LRU caches live in the workers; the parent's caches stay authoritative
for scalar calls and sub-threshold batches.
"""

from __future__ import annotations

import datetime
import threading
from typing import Sequence

from repro.common.errors import CryptoError, DomainError
from repro.common.lru import CacheStats, LRUCache
from repro.common.parallel import WorkerPool, resolve_workers, shard_spans
from repro.core import cryptoworker
from repro.crypto.det import DetCipher
from repro.crypto.ffx import FFXInteger
from repro.crypto.ope import DEFAULT_PIVOT_CACHE, OpeCipher
from repro.crypto.paillier import EncryptionPool, generate_keypair
from repro.crypto.prf import derive_key
from repro.crypto.rnd import RndCipher
from repro.crypto.search import SearchCipher
from repro.storage.rowcodec import decode_value, encode_value

_EPOCH = datetime.date(1970, 1, 1)

# Integer domain for FFX/OPE: wide enough for TPC-H's precomputed products
# (price-cents x quantity x tax factors ~ 1e13).
INT_BOUND = 1 << 47
DATE_DAYS = 1 << 15  # Covers 1970..2059.
_STR_PREFIX_BYTES = 10
# Texts up to this many UTF-8 bytes DET-encrypt through FFX (format
# preserving: ~len-byte ciphertext instead of a 16-byte AES block) — the
# paper's §5.2 point that flags and category columns should not balloon.
_SHORT_TEXT_BYTES = 12
# Cumulative domain offsets make short-text ciphertexts injective across
# lengths: a length-L plaintext maps into
# [_OFFSETS[L], _OFFSETS[L] + 256**L).
_OFFSETS = [0]
for _L in range(_SHORT_TEXT_BYTES + 1):
    _OFFSETS.append(_OFFSETS[-1] + 256 ** _L)

DEFAULT_PAILLIER_BITS = 2048
DEFAULT_CACHE_SIZE = 65536

# Smallest batch worth sharding across processes.  Symmetric schemes cost
# tens of microseconds per value, so a shard must carry hundreds of values
# before it beats the pickling round trip; Paillier costs milliseconds per
# value at real key sizes, so even small batches parallelize profitably.
PARALLEL_MIN_BATCH = 512
PAILLIER_MIN_BATCH = 8


# LRUCache lives in repro.common.lru (the OPE pivot caches share it); it
# stays importable from this module because callers and tests use it here.

# Exact-type tag lookup: dict hit on type() beats the isinstance chain in
# hot loops; _type_tag remains the fallback for subclasses.
_TYPE_TAGS = {bool: "bool", int: "int", datetime.date: "date", str: "str"}


class CryptoProvider:
    """All keys and ciphers for one encrypted database."""

    def __init__(
        self,
        master_key: bytes,
        paillier_bits: int = DEFAULT_PAILLIER_BITS,
        ope_expansion_bits: int = 16,
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int | None = None,
        paillier_keys: tuple | None = None,
        pivot_cache_size: int = DEFAULT_PIVOT_CACHE,
    ) -> None:
        """``workers``: process count for sharded batch crypto (``None``
        consults ``MONOMI_WORKERS``, ``0`` means one per core, ``1`` is
        serial).  ``paillier_keys`` injects a pre-generated key pair —
        the worker-startup path, where re-deriving every symmetric key is
        cheap but re-generating Paillier primes is not.
        ``pivot_cache_size`` bounds each OPE cipher's pivot LRU (0
        disables pivot caching; descent still shares pivots per batch)."""
        if len(master_key) < 16:
            raise CryptoError("master key must be at least 16 bytes")
        self.master_key = master_key
        self.paillier_bits = paillier_bits
        self.ope_expansion_bits = ope_expansion_bits
        self.pivot_cache_size = pivot_cache_size
        self.workers = resolve_workers(workers)
        self._pool: WorkerPool | None = None
        self._pool_lock = threading.Lock()
        # Sharding threshold for the symmetric schemes; tests lower it to
        # force pool traffic on small fixtures.  Paillier uses the fixed
        # PAILLIER_MIN_BATCH (per-value cost dwarfs the dispatch).
        self.parallel_min_batch = PARALLEL_MIN_BATCH
        self._det_str = DetCipher(derive_key(master_key, "det", "str"))
        self._det_short_text = [
            FFXInteger(
                derive_key(master_key, "det", "short-text", length),
                0,
                256 ** length - 1,
            )
            if length > 0
            else None
            for length in range(_SHORT_TEXT_BYTES + 1)
        ]
        self._det_int = FFXInteger(
            derive_key(master_key, "det", "int"), -INT_BOUND, INT_BOUND - 1
        )
        self._det_date = FFXInteger(
            derive_key(master_key, "det", "date"), 0, DATE_DAYS - 1
        )
        self._ope_int = OpeCipher(
            derive_key(master_key, "ope", "int"),
            -INT_BOUND,
            INT_BOUND - 1,
            expansion_bits=ope_expansion_bits,
            pivot_cache_size=pivot_cache_size,
        )
        self._ope_date = OpeCipher(
            derive_key(master_key, "ope", "date"),
            0,
            DATE_DAYS - 1,
            expansion_bits=ope_expansion_bits,
            pivot_cache_size=pivot_cache_size,
        )
        self._ope_str = OpeCipher(
            derive_key(master_key, "ope", "str"),
            0,
            (1 << (8 * _STR_PREFIX_BYTES)) - 1,
            expansion_bits=8,
            pivot_cache_size=pivot_cache_size,
        )
        self._rnd = RndCipher(derive_key(master_key, "rnd"))
        self._search = SearchCipher(derive_key(master_key, "search"))
        if paillier_keys is not None:
            self.paillier_public, self.paillier_private = paillier_keys
        else:
            self.paillier_public, self.paillier_private = generate_keypair(
                paillier_bits, seed=derive_key(master_key, "paillier-seed")
            )
        self._paillier_pool: EncryptionPool | None = None
        self.cache_size = cache_size
        self._det_cache = LRUCache(cache_size)
        self._ope_cache = LRUCache(cache_size)
        self._ope_dec_cache = LRUCache(cache_size)

    # -- worker pool -------------------------------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        # Double-checked under a lock: concurrent service sessions sharing
        # one provider must not race two process pools into existence.
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = WorkerPool(
                        self.workers,
                        initializer=cryptoworker.init_worker,
                        initargs=(
                            self.master_key,
                            self.paillier_bits,
                            self.ope_expansion_bits,
                            self.cache_size,
                            (self.paillier_public, self.paillier_private),
                            self.pivot_cache_size,
                        ),
                    )
        return self._pool

    def _sharded(
        self,
        op: str,
        values: list,
        sql_type: str | None = None,
        min_batch: int | None = None,
    ) -> list | None:
        """Run one batch op across the pool, or ``None`` for "go serial".

        Values split into contiguous spans (one per worker) and results
        concatenate in span order, so the output is element-wise identical
        to the serial path.  Batches below ``min_batch`` — or too small to
        give every worker a meaningful span — stay serial: for them the
        pickling round trip would cost more than the crypto.
        """
        if min_batch is None:
            min_batch = self.parallel_min_batch
        if self.workers <= 1 or len(values) < max(min_batch, 2 * self.workers):
            return None
        pool = self._ensure_pool()
        if not pool.parallel:
            return None
        tasks = [
            (op, sql_type, values[lo:hi])
            for lo, hi in shard_spans(len(values), self.workers)
        ]
        out: list = []
        for chunk in pool.map_ordered(cryptoworker.run_chunk, tasks):
            out.extend(chunk)
        return out

    def close(self) -> None:
        """Shut down the worker pool (it re-creates lazily if used again)."""
        if self._pool is not None:
            self._pool.close()

    # -- cache introspection -----------------------------------------------------

    def cache_stats(self) -> dict[str, CacheStats]:
        """Hit/miss/eviction counters for every crypto-side cache.

        Mirrors the service layer's ``PlanCache.stats()`` so benchmarks
        and operators can see how much work the value caches and the OPE
        pivot caches absorb.  Counters are advisory under concurrency
        (see :mod:`repro.common.lru`); entries/capacity are exact.
        """
        return {
            "det_encrypt": self._det_cache.stats(),
            "ope_encrypt": self._ope_cache.stats(),
            "ope_decrypt": self._ope_dec_cache.stats(),
            "ope_pivots_int": self._ope_int.cache_stats(),
            "ope_pivots_date": self._ope_date.cache_stats(),
            "ope_pivots_text": self._ope_str.cache_stats(),
        }

    def reset_crypto_caches(self) -> None:
        """Empty every value cache and OPE pivot cache.

        Results are unaffected — caches are transparent — so this exists
        for cold-path measurement (the decryption profiler) and tests.
        Counters survive the reset.
        """
        self._det_cache.clear()
        self._ope_cache.clear()
        self._ope_dec_cache.clear()
        for cipher in (self._ope_int, self._ope_date, self._ope_str):
            cipher.clear_pivot_cache()

    def __getstate__(self) -> dict:
        """Pickle without live pool handles (both re-create lazily) and
        without the unpicklable pool-creation lock."""
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_paillier_pool"] = None
        state.pop("_pool_lock", None)
        # The decryption profile is host-specific timing; a shipped clone
        # re-profiles on its own host.
        state.pop("_decryption_profile", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool_lock = threading.Lock()

    # -- DET ---------------------------------------------------------------------

    def det_encrypt(self, value: object) -> object:
        if value is None:
            return None
        key = ("e", _type_tag(value), value)
        cached = self._det_cache.get(key)
        if cached is None:
            cached = self._det_encrypt_uncached(value)
            self._det_cache.put(key, cached)
        return cached

    def det_encrypt_batch(self, values: Sequence) -> list:
        """Element-wise :meth:`det_encrypt` over a column.

        LRU misses bucket by type and ride the FFX column APIs (ints,
        dates, short texts loop Feistel rounds over the whole batch);
        wide texts fall back to the per-value CMC-style path.
        """
        if not isinstance(values, list):
            values = list(values)
        sharded = self._sharded("det_encrypt", values)
        if sharded is not None:
            return sharded
        get = self._det_cache.get
        put = self._det_cache.put
        tags = _TYPE_TAGS
        out: list = [None] * len(values)
        int_misses: list[tuple[int, tuple, int]] = []
        date_misses: list[tuple[int, tuple, int]] = []
        text_misses: dict[int, list[tuple[int, tuple, int]]] = {}
        for idx, value in enumerate(values):
            if value is None:
                continue
            tag = tags.get(type(value))
            if tag is None:
                tag = _type_tag(value)
            key = ("e", tag, value)
            cached = get(key)
            if cached is not None:
                out[idx] = cached
                continue
            if tag == "int" or tag == "bool":
                int_misses.append((idx, key, int(value)))
            elif tag == "date":
                date_misses.append((idx, key, (value - _EPOCH).days))
            elif tag == "str":
                raw = value.encode("utf-8")
                if 0 < len(raw) <= _SHORT_TEXT_BYTES:
                    text_misses.setdefault(len(raw), []).append(
                        (idx, key, int.from_bytes(raw, "big"))
                    )
                else:
                    ciphertext = self._det_str.encrypt(raw)
                    put(key, ciphertext)
                    out[idx] = ciphertext
            else:
                # Floats and unknown types: same errors as the scalar path.
                ciphertext = self._det_encrypt_uncached(value)
                put(key, ciphertext)
                out[idx] = ciphertext
        for cipher, misses in (
            (self._det_int, int_misses),
            (self._det_date, date_misses),
        ):
            if misses:
                cts = cipher.encrypt_batch([plain for _, _, plain in misses])
                for (idx, key, _), ciphertext in zip(misses, cts):
                    put(key, ciphertext)
                    out[idx] = ciphertext
        for length, misses in text_misses.items():
            offset = _OFFSETS[length]
            inners = self._det_short_text[length].encrypt_batch(
                [plain for _, _, plain in misses]
            )
            for (idx, key, _), inner in zip(misses, inners):
                ciphertext = offset + inner
                put(key, ciphertext)
                out[idx] = ciphertext
        return out

    def _det_encrypt_uncached(self, value: object) -> object:
        if isinstance(value, bool):
            return self._det_int.encrypt(int(value))
        if isinstance(value, int):
            return self._det_int.encrypt(value)
        if isinstance(value, datetime.date):
            return self._det_date.encrypt((value - _EPOCH).days)
        if isinstance(value, str):
            raw = value.encode("utf-8")
            if 0 < len(raw) <= _SHORT_TEXT_BYTES:
                ffx = self._det_short_text[len(raw)]
                inner = ffx.encrypt(int.from_bytes(raw, "big"))
                return _OFFSETS[len(raw)] + inner
            return self._det_str.encrypt(raw)
        if isinstance(value, float):
            raise DomainError(
                "DET over floats is not supported; scale DECIMALs to integers "
                "(the paper does the same, §8.1)"
            )
        raise DomainError(f"DET cannot encrypt {type(value).__name__}")

    def det_decrypt(self, ciphertext: object, sql_type: str) -> object:
        if ciphertext is None:
            return None
        if sql_type in ("int", "bool"):
            plain = self._det_int.decrypt(ciphertext)
            return bool(plain) if sql_type == "bool" else plain
        if sql_type == "date":
            return _EPOCH + datetime.timedelta(days=self._det_date.decrypt(ciphertext))
        if sql_type == "text":
            return self._det_decrypt_text(ciphertext)
        raise DomainError(f"DET cannot decrypt type {sql_type!r}")

    def _det_decrypt_text(self, ciphertext: object) -> str:
        if isinstance(ciphertext, int):
            length = 1
            while ciphertext >= _OFFSETS[length + 1]:
                length += 1
            ffx = self._det_short_text[length]
            inner = ffx.decrypt(ciphertext - _OFFSETS[length])
            return inner.to_bytes(length, "big").decode("utf-8")
        return self._det_str.decrypt(ciphertext).decode("utf-8")

    def det_decrypt_batch(self, ciphertexts: Sequence, sql_type: str) -> list:
        """Element-wise :meth:`det_decrypt` with one type dispatch.

        Integer-backed types ride the FFX column APIs (distinct values
        decrypt once per batch); text partitions into per-length FFX
        columns plus the wide-block fallback, deduplicated per batch.
        """
        if not isinstance(ciphertexts, list):
            ciphertexts = list(ciphertexts)
        sharded = self._sharded("det_decrypt", ciphertexts, sql_type)
        if sharded is not None:
            return sharded
        if sql_type in ("int", "bool"):
            plains = self._det_int.decrypt_batch(ciphertexts)
            if sql_type == "bool":
                return [None if p is None else bool(p) for p in plains]
            return plains
        if sql_type == "date":
            epoch = _EPOCH
            delta = datetime.timedelta
            return [
                None if p is None else epoch + delta(days=p)
                for p in self._det_date.decrypt_batch(ciphertexts)
            ]
        if sql_type == "text":
            return self._det_decrypt_text_batch(ciphertexts)
        raise DomainError(f"DET cannot decrypt type {sql_type!r}")

    def _det_decrypt_text_batch(self, ciphertexts: list) -> list:
        out: list = [None] * len(ciphertexts)
        # length -> inner FFX ciphertext -> indices holding it
        short_groups: dict[int, dict[int, list[int]]] = {}
        wide_groups: dict[bytes, list[int]] = {}
        for idx, ciphertext in enumerate(ciphertexts):
            if ciphertext is None:
                continue
            if isinstance(ciphertext, int):
                length = 1
                while ciphertext >= _OFFSETS[length + 1]:
                    length += 1
                short_groups.setdefault(length, {}).setdefault(
                    ciphertext - _OFFSETS[length], []
                ).append(idx)
            else:
                wide_groups.setdefault(ciphertext, []).append(idx)
        for length, groups in short_groups.items():
            distinct = list(groups)
            inners = self._det_short_text[length].decrypt_batch(distinct)
            for inner_ct, plain_int in zip(distinct, inners):
                text = plain_int.to_bytes(length, "big").decode("utf-8")
                for idx in groups[inner_ct]:
                    out[idx] = text
        decrypt_wide = self._det_str.decrypt
        for ciphertext, idxs in wide_groups.items():
            text = decrypt_wide(ciphertext).decode("utf-8")
            for idx in idxs:
                out[idx] = text
        return out

    # -- OPE ---------------------------------------------------------------------

    def ope_encrypt(self, value: object) -> int | None:
        if value is None:
            return None
        key = ("e", _type_tag(value), value)
        cached = self._ope_cache.get(key)
        if cached is None:
            cached = self._ope_encrypt_uncached(value)
            self._ope_cache.put(key, cached)
        return cached

    def ope_encrypt_batch(self, values: Sequence) -> list:
        """Element-wise :meth:`ope_encrypt` over a column.

        LRU misses bucket by type and descend the shared OPE tree once
        per batch via :meth:`OpeCipher.encrypt_batch`, so repeated and
        clustered values pay for their common tree prefix once.
        """
        if not isinstance(values, list):
            values = list(values)
        sharded = self._sharded("ope_encrypt", values)
        if sharded is not None:
            return sharded
        get = self._ope_cache.get
        put = self._ope_cache.put
        tags = _TYPE_TAGS
        out: list = [None] * len(values)
        int_misses: list[tuple[int, tuple, int]] = []
        date_misses: list[tuple[int, tuple, int]] = []
        str_misses: list[tuple[int, tuple, int]] = []
        for idx, value in enumerate(values):
            if value is None:
                continue
            tag = tags.get(type(value))
            if tag is None:
                tag = _type_tag(value)
            key = ("e", tag, value)
            cached = get(key)
            if cached is not None:
                out[idx] = cached
                continue
            if tag == "int" or tag == "bool":
                int_misses.append((idx, key, int(value)))
            elif tag == "date":
                date_misses.append((idx, key, (value - _EPOCH).days))
            elif tag == "str":
                prefix = value.encode("utf-8")[:_STR_PREFIX_BYTES]
                prefix = prefix + b"\x00" * (_STR_PREFIX_BYTES - len(prefix))
                str_misses.append((idx, key, int.from_bytes(prefix, "big")))
            else:
                raise DomainError(f"OPE cannot encrypt {type(value).__name__}")
        for cipher, misses in (
            (self._ope_int, int_misses),
            (self._ope_date, date_misses),
            (self._ope_str, str_misses),
        ):
            if misses:
                cts = cipher.encrypt_batch([plain for _, _, plain in misses])
                for (idx, key, _), ciphertext in zip(misses, cts):
                    put(key, ciphertext)
                    out[idx] = ciphertext
        return out

    def _ope_encrypt_uncached(self, value: object) -> int:
        if isinstance(value, bool):
            return self._ope_int.encrypt(int(value))
        if isinstance(value, int):
            return self._ope_int.encrypt(value)
        if isinstance(value, datetime.date):
            return self._ope_date.encrypt((value - _EPOCH).days)
        if isinstance(value, str):
            prefix = value.encode("utf-8")[:_STR_PREFIX_BYTES]
            prefix = prefix + b"\x00" * (_STR_PREFIX_BYTES - len(prefix))
            return self._ope_str.encrypt(int.from_bytes(prefix, "big"))
        raise DomainError(f"OPE cannot encrypt {type(value).__name__}")

    def ope_decrypt(self, ciphertext: int | None, sql_type: str) -> object:
        if ciphertext is None:
            return None
        key = (sql_type, ciphertext)
        cached = self._ope_dec_cache.get(key)
        if cached is not None:
            return cached
        plain = self._ope_decrypt_uncached(ciphertext, sql_type)
        self._ope_dec_cache.put(key, plain)
        return plain

    def _ope_decrypt_uncached(self, ciphertext: int, sql_type: str) -> object:
        if sql_type in ("int", "bool"):
            plain: object = self._ope_int.decrypt(ciphertext)
            if sql_type == "bool":
                plain = bool(plain)
        elif sql_type == "date":
            plain = _EPOCH + datetime.timedelta(days=self._ope_date.decrypt(ciphertext))
        elif sql_type == "text":
            raw = self._ope_str.decrypt(ciphertext).to_bytes(_STR_PREFIX_BYTES, "big")
            plain = raw.rstrip(b"\x00").decode("utf-8", errors="replace")
        else:
            raise DomainError(f"OPE cannot decrypt type {sql_type!r}")
        return plain

    def ope_decrypt_batch(self, ciphertexts: Sequence, sql_type: str) -> list:
        """Element-wise :meth:`ope_decrypt` over a column.

        Cache misses deduplicate per batch and ride the shared-tree
        :meth:`OpeCipher.decrypt_batch`, the client-side hot path for
        range-query post-processing.
        """
        if not isinstance(ciphertexts, list):
            ciphertexts = list(ciphertexts)
        sharded = self._sharded("ope_decrypt", ciphertexts, sql_type)
        if sharded is not None:
            return sharded
        get = self._ope_dec_cache.get
        put = self._ope_dec_cache.put
        out: list = [None] * len(ciphertexts)
        miss_idx: list[int] = []
        miss_cts: list[int] = []
        for idx, ciphertext in enumerate(ciphertexts):
            if ciphertext is None:
                continue
            cached = get((sql_type, ciphertext))
            if cached is not None:
                out[idx] = cached
                continue
            miss_idx.append(idx)
            miss_cts.append(ciphertext)
        if not miss_idx:
            return out
        if sql_type in ("int", "bool"):
            plains: list = self._ope_int.decrypt_batch(miss_cts)
            if sql_type == "bool":
                plains = [bool(p) for p in plains]
        elif sql_type == "date":
            epoch = _EPOCH
            delta = datetime.timedelta
            plains = [
                epoch + delta(days=p)
                for p in self._ope_date.decrypt_batch(miss_cts)
            ]
        elif sql_type == "text":
            plains = [
                raw_int.to_bytes(_STR_PREFIX_BYTES, "big")
                .rstrip(b"\x00")
                .decode("utf-8", errors="replace")
                for raw_int in self._ope_str.decrypt_batch(miss_cts)
            ]
        else:
            raise DomainError(f"OPE cannot decrypt type {sql_type!r}")
        for idx, ciphertext, plain in zip(miss_idx, miss_cts, plains):
            put((sql_type, ciphertext), plain)
            out[idx] = plain
        return out

    # -- RND ---------------------------------------------------------------------

    def rnd_encrypt(self, value: object) -> bytes | None:
        if value is None:
            return None
        return self._rnd.encrypt(encode_value(value))

    def rnd_encrypt_batch(self, values: Sequence) -> list:
        if not isinstance(values, list):
            values = list(values)
        sharded = self._sharded("rnd_encrypt", values)
        if sharded is not None:
            return sharded
        enc = self._rnd.encrypt
        encode = encode_value
        return [None if v is None else enc(encode(v)) for v in values]

    def rnd_decrypt(self, ciphertext: bytes | None) -> object:
        if ciphertext is None:
            return None
        value, _ = decode_value(self._rnd.decrypt(ciphertext))
        return value

    def rnd_decrypt_batch(self, ciphertexts: Sequence) -> list:
        if not isinstance(ciphertexts, list):
            ciphertexts = list(ciphertexts)
        sharded = self._sharded("rnd_decrypt", ciphertexts)
        if sharded is not None:
            return sharded
        dec = self._rnd.decrypt
        decode = decode_value
        return [None if c is None else decode(dec(c))[0] for c in ciphertexts]

    # -- SEARCH ------------------------------------------------------------------

    def search_encrypt(self, value: str | None):
        if value is None:
            return None
        return self._search.encrypt(value)

    def search_encrypt_batch(self, values: Sequence) -> list:
        if not isinstance(values, list):
            values = list(values)
        sharded = self._sharded("search_encrypt", values)
        if sharded is not None:
            return sharded
        enc = self._search.encrypt
        return [None if v is None else enc(v) for v in values]

    def search_trapdoor(self, pattern: str) -> bytes:
        return self._search.trapdoor(pattern)

    # -- Paillier ------------------------------------------------------------------

    @property
    def paillier_pool(self) -> EncryptionPool:
        """Shared fixed-base randomness pool for bulk Paillier encryption.

        Deliberately unseeded (OS randomness): a deterministic pool would
        repeat obfuscation factors across provider instances, letting the
        server compute plaintext deltas between two loads under the same
        key.  Only the *keys* are derived deterministically.
        """
        if self._paillier_pool is None:
            self._paillier_pool = self.paillier_public.make_pool()
        return self._paillier_pool

    def paillier_encrypt_batch(self, messages: Sequence[int]) -> list[int]:
        if not isinstance(messages, list):
            messages = list(messages)
        sharded = self._sharded(
            "paillier_encrypt", messages, min_batch=PAILLIER_MIN_BATCH
        )
        if sharded is not None:
            return sharded
        return self.paillier_public.encrypt_batch(messages, pool=self.paillier_pool)

    def paillier_decrypt_batch(self, ciphertexts: Sequence[int]) -> list[int]:
        """CRT-batched Paillier decryption, sharded across the pool.

        This is the packed-layout hot path: the plan executor gathers a
        whole result column's ciphertexts into one call, so at real key
        sizes even modest result sets clear :data:`PAILLIER_MIN_BATCH`.
        """
        if not isinstance(ciphertexts, list):
            ciphertexts = list(ciphertexts)
        sharded = self._sharded(
            "paillier_decrypt", ciphertexts, min_batch=PAILLIER_MIN_BATCH
        )
        if sharded is not None:
            return sharded
        return self.paillier_private.decrypt_batch(ciphertexts)

    # -- generic dispatch ----------------------------------------------------------

    def encrypt(self, value: object, scheme: str) -> object:
        if scheme == "det":
            return self.det_encrypt(value)
        if scheme == "ope":
            return self.ope_encrypt(value)
        if scheme == "rnd":
            return self.rnd_encrypt(value)
        if scheme == "search":
            return self.search_encrypt(value)
        raise DomainError(f"no direct encryption for scheme {scheme!r}")

    def encrypt_batch(self, values: Sequence, scheme: str) -> list:
        """Column-wise :meth:`encrypt`: one scheme dispatch per batch."""
        if scheme == "det":
            return self.det_encrypt_batch(values)
        if scheme == "ope":
            return self.ope_encrypt_batch(values)
        if scheme == "rnd":
            return self.rnd_encrypt_batch(values)
        if scheme == "search":
            return self.search_encrypt_batch(values)
        raise DomainError(f"no direct encryption for scheme {scheme!r}")

    def decrypt(self, ciphertext: object, scheme: str, sql_type: str) -> object:
        if scheme == "det":
            return self.det_decrypt(ciphertext, sql_type)
        if scheme == "ope":
            return self.ope_decrypt(ciphertext, sql_type)
        if scheme == "rnd":
            return self.rnd_decrypt(ciphertext)
        if scheme == "plain":
            return ciphertext
        raise DomainError(f"no direct decryption for scheme {scheme!r}")

    def decrypt_batch(self, ciphertexts: Sequence, scheme: str, sql_type: str) -> list:
        """Column-wise :meth:`decrypt`: one scheme dispatch per batch."""
        if scheme == "det":
            return self.det_decrypt_batch(ciphertexts, sql_type)
        if scheme == "ope":
            return self.ope_decrypt_batch(ciphertexts, sql_type)
        if scheme == "rnd":
            return self.rnd_decrypt_batch(ciphertexts)
        if scheme == "plain":
            return list(ciphertexts)
        raise DomainError(f"no direct decryption for scheme {scheme!r}")


def _type_tag(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, datetime.date):
        return "date"
    if isinstance(value, str):
        return "str"
    return type(value).__name__
