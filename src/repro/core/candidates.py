"""Candidate design construction shared by the designer and the planner.

A *candidate design* = base fetch copies + a chosen subset of EncSet units.
The base guarantees every column stays client-decryptable; units add the
operational schemes (DET equality, OPE order, HOM groups, SEARCH tags).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator

from repro.core.design import EncEntry, HomGroup, PhysicalDesign, TechniqueFlags
from repro.core.encset import Pair, Unit
from repro.core.schemes import Scheme
from repro.engine.catalog import Database
from repro.sql import ast

COLUMNAR_ROWS_PER_CT = 64
MAX_POWERSET_UNITS = 10


def base_design_for_plain(plain_db: Database) -> PhysicalDesign:
    """Design-time base: the DET fallback copy of every base column (§7's
    "at most deterministic encryption"; floats use RND, which FFX cannot
    carry)."""
    design = PhysicalDesign()
    for name, table in plain_db.tables.items():
        for column in table.schema.columns:
            scheme = Scheme.RND if column.type == "float" else Scheme.DET
            design.add(name, ast.Column(column.name), scheme)
    return design


def base_design_for_loaded(design: PhysicalDesign) -> PhysicalDesign:
    """Runtime base: one preferred fetch copy per stored (table, expr).

    Preference RND > DET > OPE: the planner always *may* fetch a value, and
    enumerated units decide which operational schemes it *uses*.
    """
    base = PhysicalDesign()
    by_value: dict[tuple[str, str], set[Scheme]] = {}
    for entry in design.entries:
        by_value.setdefault((entry.table, entry.expr_sql), set()).add(entry.scheme)
    for (table, expr_sql), schemes in by_value.items():
        for scheme in (Scheme.DET, Scheme.RND, Scheme.OPE):
            if scheme in schemes:
                base.entries.add(EncEntry(table, expr_sql, scheme))
                break
    return base


def _loaded_group_for(design: PhysicalDesign, pair: Pair):
    """Find a loaded group matching the pair's packing variant."""
    want_columnar = (pair.variant or "row") == "col"
    for group in design.hom_groups:
        if group.table != pair.table or not group.covers(pair.expr_sql):
            continue
        if (group.rows_per_ciphertext > 1) == want_columnar:
            return group
    return None


def pair_available(pair: Pair, design: PhysicalDesign) -> bool:
    if pair.scheme is Scheme.HOM:
        return _loaded_group_for(design, pair) is not None
    return design.has(pair.table, pair.expr_sql, pair.scheme)


def usable_units(units: Iterable[Unit], design: PhysicalDesign) -> list[Unit]:
    return [u for u in units if all(pair_available(p, design) for p in u.pairs)]


def hom_groups_for_pairs(
    pairs: Iterable[Pair], flags: TechniqueFlags
) -> list[HomGroup]:
    """Materialize HOM pairs into candidate packed groups.

    With ``col_packing`` all of a table's aggregated expressions pack into
    one group (§5.3: all columns aggregated by a query share one
    ciphertext); without it each expression gets its own group (the
    CryptDB-style one-value-per-ciphertext layout).  The ``col`` variant
    additionally packs many rows per ciphertext (§5.2); ``row`` keeps one
    row per ciphertext so any GROUP BY folds into per-group products.
    """
    by_key: dict[tuple[str, str], set[str]] = {}
    for pair in pairs:
        if pair.scheme is Scheme.HOM:
            variant = pair.variant or "row"
            by_key.setdefault((pair.table, variant), set()).add(pair.expr_sql)
    groups: list[HomGroup] = []
    for (table, variant), exprs in sorted(by_key.items()):
        rows_per_ct = COLUMNAR_ROWS_PER_CT if variant == "col" else 1
        if flags.col_packing:
            groups.append(HomGroup(table, tuple(sorted(exprs)), rows_per_ct))
        else:
            groups.extend(
                HomGroup(table, (expr,), rows_per_ct) for expr in sorted(exprs)
            )
    return groups


def build_candidate(
    base: PhysicalDesign,
    chosen_units: Iterable[Unit],
    flags: TechniqueFlags,
    loaded: PhysicalDesign | None = None,
) -> PhysicalDesign:
    """Base + chosen units.  With ``loaded`` (runtime), HOM pairs map to the
    groups that actually exist on the server; otherwise (design time) new
    groups are synthesized per the technique flags."""
    candidate = base.copy()
    pairs: list[Pair] = sorted(
        {p for unit in chosen_units for p in unit.pairs}, key=repr
    )
    for pair in pairs:
        if pair.scheme is Scheme.HOM:
            continue
        candidate.entries.add(EncEntry(pair.table, pair.expr_sql, pair.scheme))
    if loaded is not None:
        for pair in pairs:
            if pair.scheme is Scheme.HOM:
                group = _loaded_group_for(loaded, pair)
                if group is not None:
                    candidate.add_hom_group(group)
    else:
        for group in hom_groups_for_pairs(pairs, flags):
            candidate.add_hom_group(group)
    return candidate


def conflicting_hom_variants(subset: tuple[Unit, ...]) -> bool:
    """True when a subset picks both packing variants of the same value —
    they are alternatives; materializing both wastes space for no plan
    benefit."""
    seen: dict[tuple[str, str], str] = {}
    for unit in subset:
        for pair in unit.pairs:
            if pair.scheme is not Scheme.HOM:
                continue
            key = (pair.table, pair.expr_sql)
            variant = pair.variant or "row"
            if seen.setdefault(key, variant) != variant:
                return True
    return False


def unit_subsets(units: list[Unit]) -> Iterator[tuple[Unit, ...]]:
    """All subsets of the units (the paper's PowSet), capped for sanity.

    Beyond :data:`MAX_POWERSET_UNITS` units, the tail (rarest) units are
    always included — pruning keeps the enumeration tractable exactly as
    §6.3 intends.
    """
    if len(units) <= MAX_POWERSET_UNITS:
        head, tail = units, ()
    else:
        head = units[:MAX_POWERSET_UNITS]
        # Forced-in tail must not carry conflicting packing variants (they
        # would poison every subset); keep the per-row variant.
        tail_list = []
        for unit in units[MAX_POWERSET_UNITS:]:
            candidate_tail = tuple(tail_list) + (unit,)
            if not conflicting_hom_variants(candidate_tail):
                tail_list.append(unit)
        tail = tuple(tail_list)
    for r in range(len(head) + 1):
        for combo in combinations(head, r):
            yield tuple(combo) + tail
