"""Split query plan representation (Figure 3 in structured form).

A :class:`SplitPlan` is what MONOMI's planner hands the client library:

* ``relations`` — inputs the trusted client materializes first.  A
  :class:`RemoteRelation` is a ``RemoteSQL`` node: an encrypted query the
  untrusted server runs, plus :class:`DecryptSpec` entries describing how
  the client decrypts each output column into named *virtual columns*
  (named by the plaintext expression they carry, e.g.
  ``ps_supplycost * ps_availqty``).  A :class:`ClientRelation` is a nested
  split plan whose result feeds the outer query (FROM-subqueries).
* ``residual`` — the client-side remainder of the query (LocalFilter /
  LocalGroupBy / LocalGroupFilter / LocalSort / LocalProjection in the
  paper's Figure 3), expressed as one SELECT over the virtual columns and
  executed by the same relational engine on the trusted side.
* ``subplans`` — scalar or IN-set subqueries executed in a separate round
  trip; their results bind into the residual (plaintext scalar) or back
  into the server query (DET-encrypted IN set), reproducing the paper's
  "intermediate results sent between the client and the server several
  times" plans.

``unnest`` on a RemoteRelation marks GROUP()-mode results: the server
grouped and shipped whole groups' values via the ``grp()`` UDF; the client
explodes each group back into rows before re-aggregating exactly (the
LocalGroupBy path), while homomorphic or plain aggregates ride along as
per-group scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql import ast, to_sql


@dataclass(frozen=True)
class DecryptSpec:
    """How to turn one server output column into virtual column(s).

    kind:
      * ``det`` / ``ope`` / ``rnd`` — decrypt with that scheme into
        ``output_name`` (``sql_type`` guides typed decryption);
      * ``plain`` — server-visible value (counts, row ids): no decryption;
      * ``hom``   — a packed Paillier aggregate: decrypt once, emit one
        virtual column per packed expression (``hom_output_names``), each
        divided out of the packed slot sums;
      * ``grp``   — a grp() list: decrypt each element with ``elem_kind``;
        list-valued until unnesting.
    """

    kind: str
    output_name: str
    sql_type: str = "int"
    elem_kind: str = "det"
    hom_file: str = ""
    hom_output_names: tuple[str, ...] = ()
    hom_expr_sqls: tuple[str, ...] = ()

    @property
    def output_names(self) -> tuple[str, ...]:
        if self.kind == "hom":
            return self.hom_output_names
        return (self.output_name,)


@dataclass
class RemoteRelation:
    """One RemoteSQL operator: encrypted query + decryption recipe.

    ``plain_selectivity`` is the trusted client's estimate of the pushed
    WHERE's selectivity, computed over *plaintext* statistics — the server
    optimizer cannot interpolate ranges over OPE ciphertexts.
    """

    alias: str
    query: ast.Select
    specs: list[DecryptSpec]
    unnest: bool = False
    plain_selectivity: float | None = None

    def sql(self) -> str:
        return to_sql(self.query)


@dataclass
class ClientRelation:
    """A nested split plan materialized on the client (FROM-subquery)."""

    alias: str
    plan: "SplitPlan"
    column_names: tuple[str, ...] = ()


@dataclass
class SubPlan:
    """A subquery executed in its own round trip.

    ``mode``:
      * ``scalar_residual`` — bind the (plaintext) scalar into the residual
        query as parameter ``:param_name``;
      * ``in_set_server``   — DET-encrypt the result column and bind the set
        into the server query as ``:param_name`` (consumed by ``in_set``).
    """

    plan: "SplitPlan"
    mode: str
    param_name: str


@dataclass
class SplitPlan:
    relations: list = field(default_factory=list)
    residual: ast.Select | None = None
    subplans: list[SubPlan] = field(default_factory=list)

    # -- introspection used by tests and the EXPLAIN-style display -------------

    def remote_relations(self) -> list[RemoteRelation]:
        out = [r for r in self.relations if isinstance(r, RemoteRelation)]
        for relation in self.relations:
            if isinstance(relation, ClientRelation):
                out.extend(relation.plan.remote_relations())
        for subplan in self.subplans:
            out.extend(subplan.plan.remote_relations())
        return out

    def is_fully_remote(self) -> bool:
        """True when the residual does no real work beyond projection of the
        server's outputs (everything was pushed)."""
        if self.subplans or len(self.relations) != 1:
            return False
        relation = self.relations[0]
        if not isinstance(relation, RemoteRelation) or relation.unnest:
            return False
        residual = self.residual
        if residual is None:
            return True
        return (
            residual.where is None
            and not residual.group_by
            and residual.having is None
        )

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines: list[str] = []
        if self.residual is not None:
            lines.append(f"{pad}Residual: {to_sql(self.residual)}")
        for relation in self.relations:
            if isinstance(relation, RemoteRelation):
                mode = " [unnest]" if relation.unnest else ""
                lines.append(f"{pad}RemoteSQL {relation.alias}{mode}: {relation.sql()}")
            else:
                lines.append(f"{pad}ClientRelation {relation.alias}:")
                lines.append(relation.plan.explain(indent + 1))
        for subplan in self.subplans:
            lines.append(f"{pad}SubPlan :{subplan.param_name} ({subplan.mode}):")
            lines.append(subplan.plan.explain(indent + 1))
        return "\n".join(lines)
