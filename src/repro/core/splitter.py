"""GENERATEQUERYPLAN — Algorithm 1, split client/server execution.

Given a normalized query and a physical design, produce a
:class:`~repro.core.plan.SplitPlan`: the server query over encrypted
columns, decryption specs, and the client-side residual query.

Mapping to the paper's pseudo-code:

* lines 1–3   (subqueries in FROM)            → :meth:`_plan_composition`
* lines 6–13  (WHERE / join clauses)          → :meth:`_split_where`
* lines 14–18 (GROUP BY onto the server)      → :meth:`_push_group_by`
* lines 19–31 (HAVING, client GROUP BY)       → :meth:`_split_having` and
  residual construction
* lines 32–37 (projections, EXPRS helper)     → :meth:`_plan_outputs` /
  :meth:`_components`
* line 38–44  (plan assembly)                 → :meth:`_build_residual`

Beyond the pseudo-code, this implements the paper's §5 techniques the
planner relies on: homomorphic aggregation via ``hom_agg`` when a packed
group covers the SUM's expression, the ``grp()`` fallback that ships group
values for client-side aggregation (Figure 3), conservative pre-filtering
(§5.4), multi-round-trip subquery materialization (IN-subqueries whose
HAVING cannot run on the server — TPC-H Q18), and ORDER BY + LIMIT pushdown
when the whole query runs on the server.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.common.errors import PlanningError, UnsupportedQueryError
from repro.core.design import PhysicalDesign, normalize_expr
from repro.core.design import TechniqueFlags
from repro.core.encdata import CryptoProvider
from repro.core.loader import ROW_ID_COLUMN
from repro.core.plan import (
    ClientRelation,
    DecryptSpec,
    RemoteRelation,
    SplitPlan,
    SubPlan,
)
from repro.core.rewrite import BindingContext, ServerRewriter, strip_qualifiers
from repro.core.typing import infer_type
from repro.engine.schema import TableSchema
from repro.sql import ast, to_sql

StatsMax = Callable[[str, str], int | None]


def generate_query_plan(
    query: ast.Select,
    design: PhysicalDesign,
    schemas: dict[str, TableSchema],
    provider: CryptoProvider,
    flags: TechniqueFlags = TechniqueFlags(),
    stats_max: StatsMax | None = None,
    plain_db=None,
) -> SplitPlan:
    """Plan one (already normalized) query.  ``schemas`` maps plaintext table
    names to their schemas; ``stats_max`` supplies column maxima for §5.4
    pre-filtering; ``plain_db`` (optional) provides plaintext statistics for
    selectivity hints on RemoteSQL nodes."""
    splitter = _Splitter(design, schemas, provider, flags, stats_max, plain_db)
    return splitter.plan(query)


class _Splitter:
    def __init__(
        self,
        design: PhysicalDesign,
        schemas: dict[str, TableSchema],
        provider: CryptoProvider,
        flags: TechniqueFlags,
        stats_max: StatsMax | None,
        plain_db=None,
    ) -> None:
        self.design = design
        self.schemas = schemas
        self.provider = provider
        self.flags = flags
        self.stats_max = stats_max or (lambda table, expr: None)
        self.plain_db = plain_db
        self._alias_counter = 0

    # ------------------------------------------------------------------ entry

    def plan(self, query: ast.Select) -> SplitPlan:
        if self._has_from_subquery(query):
            return self._plan_composition(query)
        return self._plan_standard(query)

    def _fresh_alias(self) -> str:
        self._alias_counter += 1
        return f"v{self._alias_counter}"

    # ------------------------------------------------- composition (lines 1-3)

    @staticmethod
    def _has_from_subquery(query: ast.Select) -> bool:
        def contains(ref: ast.TableRef) -> bool:
            if isinstance(ref, ast.SubqueryRef):
                return True
            if isinstance(ref, ast.Join):
                return contains(ref.left) or contains(ref.right)
            return False

        return any(contains(ref) for ref in query.from_items)

    def _plan_composition(self, query: ast.Select) -> SplitPlan:
        """FROM contains subqueries: plan each input, finish on the client.

        Single-table conjuncts (including fully server-rewritable subquery
        predicates) push into the corresponding table fetch; subqueries the
        residual would otherwise re-evaluate become separate subplans whose
        results bind as residual parameters.
        """
        relations: list = []
        subplans: list[SubPlan] = []
        new_from: list[ast.TableRef] = []
        conjuncts = ast.conjuncts(query.where)
        consumed: set[int] = set()
        table_refs = [r for r in query.from_items if isinstance(r, ast.TableName)]
        merged = None
        if len(table_refs) >= 2:
            merged = self._merged_table_relation(table_refs, query, conjuncts)
        if merged is not None:
            relations.append(merged)
            new_from.append(ast.TableName(merged.alias))
        for ref in query.from_items:
            if isinstance(ref, ast.SubqueryRef):
                inner = self.plan(ref.query)
                column_names = tuple(
                    item.output_name(i) for i, item in enumerate(ref.query.items)
                )
                relations.append(ClientRelation(ref.alias, inner, column_names))
                new_from.append(ast.TableName(ref.alias))
            elif isinstance(ref, ast.TableName):
                if merged is not None:
                    continue  # Covered by the merged server-side join.
                relation = self._fetch_table_relation(ref, query, conjuncts, consumed)
                relations.append(relation)
                new_from.append(ast.TableName(relation.alias))
            else:
                raise UnsupportedQueryError(
                    "explicit JOIN mixed with FROM-subqueries is not supported"
                )
        remaining = [c for i, c in enumerate(conjuncts) if i not in consumed]
        state = _CompositionState(subplans)
        where = ast.conjoin(
            [self._replace_residual_subqueries(c, state) for c in remaining]
        )
        having = (
            self._replace_residual_subqueries(query.having, state)
            if query.having is not None
            else None
        )
        residual = replace(
            query, from_items=tuple(new_from), where=where, having=having
        )
        return SplitPlan(relations=relations, residual=residual, subplans=subplans)

    def _replace_residual_subqueries(self, expr: ast.Expr, state) -> ast.Expr:
        """Subqueries surviving into a composition residual must run as
        separate plans — the client database only holds the materialized
        relations, not the base tables."""

        def rewrite_node(node: ast.Expr) -> ast.Expr:
            if isinstance(node, ast.ScalarSubquery):
                param = f"sub{len(state.subplans)}"
                state.subplans.append(SubPlan(self.plan(node.query), "scalar_residual", param))
                return ast.Param(param)
            if isinstance(node, ast.InSubquery):
                param = f"sub{len(state.subplans)}"
                state.subplans.append(SubPlan(self.plan(node.query), "set_residual", param))
                test = ast.FuncCall("in_set", (node.needle, ast.Param(param)))
                return ast.UnaryOp("not", test) if node.negated else test
            if isinstance(node, ast.Exists):
                raise UnsupportedQueryError(
                    "correlated EXISTS in a FROM-subquery composition"
                )
            return node

        return ast.transform(expr, rewrite_node)

    def _merged_table_relation(
        self,
        table_refs: list[ast.TableName],
        query: ast.Select,
        conjuncts: list[ast.Expr],
    ) -> RemoteRelation | None:
        """Join the plain tables of a composition query on the *server*.

        Without this, a query like TPC-H Q17 (lineitem ⋈ part ⋈
        FROM-subquery) downloads the entire fact table.  When the
        plain-table join predicates and filters all rewrite, ship one
        filtered join instead; the client only joins the subquery results.

        Requirements (else fall back to per-table fetches): no qualified or
        colliding column references into the merged tables, and every
        conjunct touching 2+ merged tables must be server-rewritable.
        """
        tables: dict[str, str] = {}
        schemas: dict[str, TableSchema] = {}
        for ref in table_refs:
            if ref.binding != ref.name:
                return None  # Aliased tables: keep per-table fetches.
            schema = self.schemas.get(ref.name)
            if schema is None:
                return None
            tables[ref.binding] = ref.name
            schemas[ref.binding] = schema
        bindings = BindingContext(tables, schemas, registry=self.schemas)
        rewriter = ServerRewriter(self.design, self.provider, bindings)

        # Referenced columns across all merged tables must be unambiguous.
        referenced: dict[str, str] = {}  # column -> table
        for ref in table_refs:
            schema = schemas[ref.binding]
            for name in self._referenced_columns(query, schema):
                if name in referenced and referenced[name] != ref.name:
                    return None
                referenced[name] = ref.name

        items: list[ast.SelectItem] = []
        specs: list[DecryptSpec] = []
        for name in sorted(referenced):
            rewritten = rewriter.rewrite_any(ast.Column(name))
            if rewritten is None:
                return None
            expr, kind = rewritten
            items.append(ast.SelectItem(expr))
            schema = self.schemas[referenced[name]]
            specs.append(DecryptSpec(kind, name, schema.column(name).type))

        server_where: list[ast.Expr] = []
        pushed_plain: list[ast.Expr] = []
        for conjunct in conjuncts:
            touched = set()
            resolvable = True
            for column in ast.find_columns(conjunct):
                resolved = bindings.resolve_column(column) if column.name != "*" else None
                if resolved is None:
                    resolvable = False
                else:
                    touched.add(resolved[1])
            if not touched:
                continue
            rewritten = rewriter.rewrite_predicate(conjunct) if resolvable else None
            if rewritten is not None:
                server_where.append(rewritten)
                pushed_plain.append(conjunct)
            elif len(touched) >= 2:
                return None  # A cross-table predicate must push, or we bail.
        remote = ast.Select(
            items=tuple(items),
            from_items=tuple(ast.TableName(t) for t in sorted(tables)),
            where=ast.conjoin(server_where),
        )
        return RemoteRelation(
            alias="__t",
            query=remote,
            specs=specs,
            plain_selectivity=self._selectivity_hint(pushed_plain, bindings),
        )

    def _fetch_table_relation(
        self,
        ref: ast.TableName,
        query: ast.Select,
        conjuncts: list[ast.Expr],
        consumed: set[int],
    ) -> RemoteRelation:
        """Download one table's referenced columns for client-side joining."""
        table = ref.name
        schema = self.schemas.get(table)
        if schema is None:
            raise PlanningError(f"unknown table {table!r}")
        bindings = BindingContext(
            {ref.binding: table}, {ref.binding: schema}, registry=self.schemas
        )
        rewriter = ServerRewriter(self.design, self.provider, bindings)
        referenced = self._referenced_columns(query, schema)
        items: list[ast.SelectItem] = []
        specs: list[DecryptSpec] = []
        for name in referenced:
            rewritten = rewriter.rewrite_any(ast.Column(name))
            if rewritten is None:
                raise PlanningError(f"column {table}.{name} has no fetchable copy")
            expr, kind = rewritten
            items.append(ast.SelectItem(expr))
            specs.append(
                DecryptSpec(
                    kind=kind,
                    output_name=name,
                    sql_type=schema.column(name).type,
                )
            )
        # Push single-table rewritable WHERE conjuncts (and drop them from
        # the residual — they are exact filters, not approximations).
        server_where: list[ast.Expr] = []
        pushed_plain: list[ast.Expr] = []
        for i, conjunct in enumerate(conjuncts):
            if i in consumed:
                continue
            columns = ast.find_columns(conjunct)
            if not columns or not all(schema.has_column(c.name) for c in columns):
                continue
            rewritten = rewriter.rewrite_predicate(conjunct)
            if rewritten is not None:
                server_where.append(rewritten)
                pushed_plain.append(conjunct)
                consumed.add(i)
        remote = ast.Select(
            items=tuple(items),
            from_items=(ast.TableName(table),),
            where=ast.conjoin(server_where),
        )
        return RemoteRelation(
            alias=ref.binding,
            query=remote,
            specs=specs,
            plain_selectivity=self._selectivity_hint(pushed_plain, bindings),
        )

    @staticmethod
    def _referenced_columns(query: ast.Select, schema: TableSchema) -> list[str]:
        names: set[str] = set()

        def collect(expr: ast.Expr) -> None:
            for column in ast.find_columns(expr):
                if column.name != "*" and schema.has_column(column.name):
                    names.add(column.name)
            for sub in ast.find_subqueries(expr):
                for item in sub.items:
                    collect(item.expr)
                if sub.where is not None:
                    collect(sub.where)

        for item in query.items:
            collect(item.expr)
        if query.where is not None:
            collect(query.where)
        for key in query.group_by:
            collect(key)
        if query.having is not None:
            collect(query.having)
        for order in query.order_by:
            collect(order.expr)
        return sorted(names)

    # ------------------------------------------------------------- standard path

    def _plan_standard(self, query: ast.Select) -> SplitPlan:
        bindings = self._bindings_for(query)
        rewriter = ServerRewriter(self.design, self.provider, bindings)
        query = self._expand_aliases(query)

        state = _PlanState(query=query, bindings=bindings, rewriter=rewriter)
        self._split_where(state)
        if self._needs_client_join(state):
            # A join predicate stayed local: executing the multi-table
            # remote query would cross-product on the server.  Fetch each
            # table separately and join on the client instead.
            return self._plan_composition(query)
        self._push_group_by(state)
        self._split_having(state)
        self._plan_outputs(state)
        self._push_order_limit(state)
        return self._assemble(state)

    def _needs_client_join(self, state: "_PlanState") -> bool:
        if len(state.bindings.tables) < 2:
            return False
        for conjunct in state.local_filters:
            bindings_seen = set()
            for column in ast.find_columns(conjunct):
                resolved = state.bindings.resolve_column(column)
                if resolved is not None:
                    bindings_seen.add(resolved[0])
            if len(bindings_seen) >= 2:
                return True
        return False

    def _bindings_for(self, query: ast.Select) -> BindingContext:
        tables: dict[str, str] = {}
        schemas: dict[str, TableSchema] = {}
        for ref in _flatten(query.from_items):
            if not isinstance(ref, ast.TableName):
                raise UnsupportedQueryError("unsupported FROM item in standard path")
            schema = self.schemas.get(ref.name)
            if schema is None:
                raise PlanningError(f"unknown table {ref.name!r}")
            tables[ref.binding] = ref.name
            schemas[ref.binding] = schema
        return BindingContext(tables, schemas, registry=self.schemas)

    def _expand_aliases(self, query: ast.Select) -> ast.Select:
        """Expand select-alias references in HAVING and ORDER BY."""
        aliases = {
            item.alias: item.expr for item in query.items if item.alias is not None
        }
        if not aliases:
            return query

        def expand(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.Column) and expr.table is None and expr.name in aliases:
                return aliases[expr.name]
            return expr

        having = (
            ast.transform(query.having, expand) if query.having is not None else None
        )
        order_by = tuple(
            ast.OrderItem(ast.transform(o.expr, expand), o.ascending)
            for o in query.order_by
        )
        return replace(query, having=having, order_by=order_by)

    # -- WHERE (lines 6-13) ------------------------------------------------------

    def _split_where(self, state: "_PlanState") -> None:
        join_refs, join_conditions = self._rewrite_join_tree(state)
        state.remote_from = join_refs
        for conjunct in join_conditions + ast.conjuncts(state.query.where):
            rewritten = state.rewriter.rewrite_predicate(conjunct)
            if rewritten is not None:
                state.server_where.append(rewritten)
                state.pushed_plain.append(conjunct)
                continue
            materialized = self._materialize_in_subquery(state, conjunct)
            if materialized is not None:
                state.server_where.append(materialized)
                state.pushed_plain.append(conjunct)
                continue
            local = self._localize_predicate(state, conjunct)
            state.local_filters.append(local)

    def _rewrite_join_tree(self, state: "_PlanState") -> tuple[tuple, list[ast.Expr]]:
        """INNER JOIN ... ON conditions merge into WHERE; LEFT JOIN conditions
        must fully rewrite (outer joins cannot split)."""
        conditions: list[ast.Expr] = []

        def walk(ref: ast.TableRef) -> ast.TableRef:
            if isinstance(ref, ast.Join):
                left = walk(ref.left)
                right = walk(ref.right)
                if ref.kind == "inner":
                    if ref.condition is not None:
                        conditions.extend(ast.conjuncts(ref.condition))
                    return ast.Join(left, right, "inner", None)
                rewritten = None
                if ref.condition is not None:
                    rewritten = state.rewriter.rewrite_predicate(ref.condition)
                    if rewritten is None:
                        raise UnsupportedQueryError(
                            "LEFT JOIN condition cannot run on the server"
                        )
                return ast.Join(left, right, ref.kind, rewritten)
            return ref

        return tuple(walk(ref) for ref in state.query.from_items), conditions

    def _materialize_in_subquery(self, state: "_PlanState", conjunct: ast.Expr):
        """Multi-round-trip: run an IN-subquery separately, DET-encrypt its
        result, and feed it back as a server-side set membership test."""
        if not isinstance(conjunct, ast.InSubquery):
            return None
        needle = state.rewriter.rewrite_value(conjunct.needle, "det")
        if needle is None:
            return None
        try:
            subplan = self.plan(conjunct.query)
        except (PlanningError, UnsupportedQueryError):
            return None
        param = f"sub{len(state.subplans)}"
        state.subplans.append(SubPlan(subplan, "in_set_server", param))
        test = ast.FuncCall("in_set", (needle, ast.Param(param)))
        if conjunct.negated:
            return ast.UnaryOp("not", test)
        return test

    def _localize_predicate(self, state: "_PlanState", conjunct: ast.Expr) -> ast.Expr:
        """Prepare a conjunct for client-side evaluation: fetch its
        components (EXPRS) and replace subqueries with subplan parameters."""

        def rewrite_node(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.ScalarSubquery):
                return ast.Param(self._add_scalar_subplan(state, expr.query))
            if isinstance(expr, ast.InSubquery):
                param = self._add_scalar_subplan(state, expr.query, mode="set")
                test = ast.FuncCall("in_set", (expr.needle, ast.Param(param)))
                return ast.UnaryOp("not", test) if expr.negated else test
            if isinstance(expr, ast.Exists):
                raise UnsupportedQueryError(
                    "correlated EXISTS cannot run on the server with this design"
                )
            return expr

        local = ast.transform(conjunct, rewrite_node)
        self._collect_components(state, local)
        return local

    def _add_scalar_subplan(
        self, state: "_PlanState", query: ast.Select, mode: str = "scalar"
    ) -> str:
        subplan = self.plan(query)  # Raises if correlated/unsupported.
        param = f"sub{len(state.subplans)}"
        kind = "scalar_residual" if mode == "scalar" else "set_residual"
        state.subplans.append(SubPlan(subplan, kind, param))
        return param

    # -- GROUP BY (lines 14-18) -----------------------------------------------------

    def _push_group_by(self, state: "_PlanState") -> None:
        if state.local_filters:
            # A client-side filter must run before any aggregation: grouping
            # on the server would aggregate rows the filter later discards.
            state.group_pushed = False
            return
        keys = state.query.group_by
        rewritten: list[ast.Expr] = []
        for key in keys:
            key_rewritten = state.rewriter.rewrite_value(key, "det")
            if key_rewritten is None:
                state.group_pushed = False
                return
            rewritten.append(key_rewritten)
        state.group_pushed = True
        state.server_group_by = tuple(rewritten)

    # -- HAVING (lines 19-31) ---------------------------------------------------------

    def _split_having(self, state: "_PlanState") -> None:
        having = state.query.having
        if having is None:
            return
        if not state.group_pushed:
            state.local_having = self._localize_having(state, having)
            return
        server_parts: list[ast.Expr] = []
        local_parts: list[ast.Expr] = []
        for conjunct in ast.conjuncts(having):
            rewritten = state.rewriter.rewrite_predicate(conjunct)
            if rewritten is not None:
                server_parts.append(rewritten)
                continue
            local_parts.append(self._localize_having(state, conjunct))
            prefilter = self._build_prefilter(state, conjunct)
            if prefilter is not None:
                server_parts.append(prefilter)
        state.server_having = ast.conjoin(server_parts)
        state.local_having = ast.conjoin(local_parts)

    def _localize_having(self, state: "_PlanState", having: ast.Expr) -> ast.Expr:
        def rewrite_node(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.ScalarSubquery):
                return ast.Param(self._add_scalar_subplan(state, expr.query))
            if isinstance(expr, ast.InSubquery):
                param = self._add_scalar_subplan(state, expr.query, mode="set")
                test = ast.FuncCall("in_set", (expr.needle, ast.Param(param)))
                return ast.UnaryOp("not", test) if expr.negated else test
            return expr

        local = ast.transform(having, rewrite_node)
        if state.group_pushed:
            for call in ast.find_aggregates(local):
                self._plan_aggregate(state, call)
            self._collect_components(state, local, skip_aggregates=True)
        else:
            self._collect_components(state, local, inside_aggregates=True)
        return local

    def _build_prefilter(self, state: "_PlanState", conjunct: ast.Expr):
        """§5.4: SUM(x) > c  ⇒  MAX(x_ope) > E(m) OR COUNT(*) > c/m."""
        if not self.flags.prefilter:
            return None
        if not (isinstance(conjunct, ast.BinOp) and conjunct.op in (">", ">=")):
            return None
        left, right = conjunct.left, conjunct.right
        if not (
            isinstance(left, ast.FuncCall)
            and left.name == "sum"
            and len(left.args) == 1
            and isinstance(right, ast.Literal)
            and isinstance(right.value, (int, float))
        ):
            return None
        arg = left.args[0]
        max_rewritten = state.rewriter.rewrite_value(
            ast.FuncCall("max", (arg,)), "ope"
        )
        if max_rewritten is None:
            return None
        table = self._single_table_of(state, arg)
        if table is None:
            return None
        m = self.stats_max(table, normalize_expr(strip_qualifiers(arg)))
        if m is None or m <= 0:
            return None
        threshold = self.provider.ope_encrypt(m)
        return ast.BinOp(
            "or",
            ast.BinOp(conjunct.op, max_rewritten, ast.Literal(threshold)),
            ast.BinOp(">", ast.FuncCall("count", star=True), ast.Literal(right.value / m)),
        )

    def _single_table_of(self, state: "_PlanState", expr: ast.Expr) -> str | None:
        tables = set()
        for column in ast.find_columns(expr):
            resolved = state.bindings.resolve_column(column)
            if resolved is None:
                return None
            tables.add(resolved[1])
        if len(tables) == 1:
            return next(iter(tables))
        return None

    # -- projections (lines 32-37) ---------------------------------------------------

    def _plan_outputs(self, state: "_PlanState") -> None:
        for item in state.query.items:
            self._plan_output_expr(state, item.expr)
        for order in state.query.order_by:
            self._plan_output_expr(state, order.expr)
        if not state.group_pushed:
            for key in state.query.group_by:
                self._collect_components(state, key)

    def _plan_output_expr(self, state: "_PlanState", expr: ast.Expr) -> None:
        if state.group_pushed:
            for call in ast.find_aggregates(expr):
                self._plan_aggregate(state, call)
            self._collect_components(state, expr, skip_aggregates=True)
        else:
            self._collect_components(state, expr, inside_aggregates=True)

    def _plan_aggregate(self, state: "_PlanState", call: ast.FuncCall) -> None:
        """Decide how one aggregate is computed when the server groups."""
        name = to_sql(call)
        if name in state.agg_plans:
            return
        if call.name == "count":
            rewritten = state.rewriter.rewrite_plainval(call)
            if rewritten is not None:
                state.agg_plans[name] = ("plain", rewritten)
                state.add_fetch(name, rewritten, DecryptSpec("plain", name, "int"))
                return
        if call.name in ("min", "max") and len(call.args) == 1:
            rewritten = state.rewriter.rewrite_value(call, "ope")
            if rewritten is not None:
                sql_type = infer_type(call.args[0], state.bindings.all_schemas())
                state.agg_plans[name] = ("ope", rewritten)
                state.add_fetch(name, rewritten, DecryptSpec("ope", name, sql_type))
                return
        if call.name == "sum" and len(call.args) == 1 and not call.distinct:
            if self._plan_hom_sum(state, call):
                return
        # GROUP() fallback: ship each component's group values (Figure 3).
        self._plan_grp_fallback(state, call)

    def _plan_hom_sum(self, state: "_PlanState", call: ast.FuncCall) -> bool:
        arg = call.args[0]
        table = self._single_table_of(state, arg)
        if table is None:
            return False
        text = normalize_expr(strip_qualifiers(arg))
        group = self.design.hom_group_for(table, text)
        if group is None:
            return False
        binding = self._binding_for_table(state, arg, table)
        name = to_sql(call)
        file_key = (group.file_name, binding)
        if file_key not in state.hom_fetches:
            # Always qualify row_id: several joined tables may carry one.
            remote = ast.FuncCall(
                "hom_agg",
                (ast.Literal(group.file_name), ast.Column(ROW_ID_COLUMN, table=binding)),
            )
            spec = DecryptSpec(
                kind="hom",
                output_name=f"__hom_{group.file_name}",
                hom_file=group.file_name,
                hom_output_names=tuple(f"sum({e})" for e in group.expr_sqls),
                hom_expr_sqls=group.expr_sqls,
            )
            state.add_fetch(f"__hom_{group.file_name}", remote, spec)
            state.hom_fetches[file_key] = spec
        state.agg_plans[to_sql(call)] = ("hom", None)
        # The decrypted virtual column is named sum(<normalized arg>).
        state.agg_virtual_names[name] = f"sum({text})"
        return True

    def _plan_grp_fallback(self, state: "_PlanState", call: ast.FuncCall) -> None:
        state.needs_unnest = True
        name = to_sql(call)
        state.agg_plans[name] = ("grp", None)
        if call.star:
            return  # COUNT(*) over unnested rows needs no extra columns.
        for arg in call.args:
            for component in self._components(state, arg):
                cname = to_sql(component)
                if state.has_fetch(cname):
                    spec = state.fetch_specs[cname]
                    if spec.kind != "grp":
                        # Upgrade a scalar fetch to a grp fetch.
                        state.upgrade_to_grp(cname)
                    continue
                rewritten = state.rewriter.rewrite_any(component)
                if rewritten is None:
                    raise UnsupportedQueryError(
                        f"no fetchable representation for {cname!r}"
                    )
                remote, kind = rewritten
                sql_type = infer_type(component, state.bindings.all_schemas())
                grp_expr = ast.FuncCall("grp", (remote,))
                spec = DecryptSpec("grp", cname, sql_type, elem_kind=kind)
                state.add_fetch(cname, grp_expr, spec)

    # -- EXPRS helper ------------------------------------------------------------------

    def _collect_components(
        self,
        state: "_PlanState",
        expr: ast.Expr,
        skip_aggregates: bool = False,
        inside_aggregates: bool = False,
    ) -> None:
        for component in self._components(
            state, expr, skip_aggregates=skip_aggregates, through_aggregates=inside_aggregates
        ):
            cname = to_sql(component)
            if state.has_fetch(cname):
                continue
            rewritten = state.rewriter.rewrite_any(component)
            if rewritten is None:
                raise UnsupportedQueryError(
                    f"no fetchable representation for {cname!r}"
                )
            remote, kind = rewritten
            sql_type = infer_type(component, state.bindings.all_schemas())
            state.add_fetch(cname, remote, DecryptSpec(kind, cname, sql_type))

    def _components(
        self,
        state: "_PlanState",
        expr: ast.Expr,
        skip_aggregates: bool = False,
        through_aggregates: bool = False,
    ) -> list[ast.Expr]:
        """EXPRS(expr): minimal server-fetchable pieces that let the client
        reconstruct ``expr``."""
        out: list[ast.Expr] = []

        def visit(node: ast.Expr) -> None:
            if isinstance(node, (ast.Literal, ast.Param, ast.Interval)):
                return
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                raise UnsupportedQueryError(
                    "nested subquery requires separate planning"
                )
            if ast.is_aggregate_call(node):
                if skip_aggregates:
                    return
                if through_aggregates:
                    for arg in node.args:
                        visit(arg)
                    return
            if not isinstance(node, ast.FuncCall) or not ast.is_aggregate_call(node):
                rewritten = state.rewriter.rewrite_any(node)
                if rewritten is not None:
                    out.append(node)
                    return
            if isinstance(node, ast.Column):
                raise UnsupportedQueryError(
                    f"column {node.qualified!r} has no server representation"
                )
            children = node.children()
            if not children:
                raise UnsupportedQueryError(f"cannot fetch components of {node!r}")
            for child in children:
                visit(child)

        visit(expr)
        return out

    def _selectivity_hint(self, pushed_plain, bindings) -> float | None:
        if self.plain_db is None or not pushed_plain:
            return None
        from repro.core.selest import SelectivityEstimator

        estimator = SelectivityEstimator(self.plain_db, bindings)
        selectivity = 1.0
        for conjunct in pushed_plain:
            selectivity *= estimator.conjunct(conjunct)
        return max(selectivity, 1e-9)

    def _binding_for_table(self, state: "_PlanState", expr: ast.Expr, table: str) -> str:
        for column in ast.find_columns(expr):
            resolved = state.bindings.resolve_column(column)
            if resolved is not None and resolved[1] == table:
                return resolved[0]
        return table

    # -- ORDER BY / LIMIT pushdown ------------------------------------------------------

    def _push_order_limit(self, state: "_PlanState") -> None:
        query = state.query
        if query.limit is None or not query.order_by:
            return
        if state.local_filters or state.local_having is not None:
            return
        if not state.group_pushed or state.needs_unnest:
            return
        rewritten: list[ast.OrderItem] = []
        for order in query.order_by:
            expr = state.rewriter.rewrite_value(order.expr, "ope")
            if expr is None:
                expr = state.rewriter.rewrite_plainval(order.expr)
            if expr is None:
                return
            rewritten.append(ast.OrderItem(expr, order.ascending))
        state.server_order_by = tuple(rewritten)
        state.server_limit = query.limit

    # -- assembly (lines 38-44) ------------------------------------------------------

    def _assemble(self, state: "_PlanState") -> SplitPlan:
        remote = ast.Select(
            items=tuple(
                ast.SelectItem(expr, alias=f"c{i}")
                for i, (expr, _) in enumerate(state.fetches)
            ),
            from_items=state.remote_from,
            where=ast.conjoin(state.server_where),
            group_by=state.server_group_by if state.group_pushed else (),
            having=state.server_having,
            order_by=state.server_order_by,
            limit=state.server_limit,
        )
        specs = [spec for _, spec in state.fetches]
        relation = RemoteRelation(
            alias="__v",
            query=remote,
            specs=specs,
            unnest=state.needs_unnest,
            plain_selectivity=self._selectivity_hint(
                state.pushed_plain, state.bindings
            ),
        )
        residual = self._build_residual(state)
        return SplitPlan(
            relations=[relation], residual=residual, subplans=state.subplans
        )

    def _build_residual(self, state: "_PlanState") -> ast.Select:
        query = state.query
        subst = _Substituter(state)
        items = tuple(
            ast.SelectItem(subst.output(item.expr), item.alias)
            for item in query.items
        )
        where = None
        if state.local_filters:
            where = subst.components_only(ast.conjoin(state.local_filters))
        group_by: tuple[ast.Expr, ...] = ()
        having = None
        if state.group_pushed:
            if state.needs_unnest:
                group_by = tuple(subst.components_only(k) for k in query.group_by)
            if state.local_having is not None:
                having = subst.output(state.local_having)
                if not state.needs_unnest and not group_by:
                    # Per-group rows: HAVING becomes a plain filter.
                    where = having if where is None else ast.BinOp("and", where, having)
                    having = None
        else:
            group_by = tuple(subst.components_only(k) for k in query.group_by)
            if state.local_having is not None:
                having = subst.output(state.local_having)
        order_by = tuple(
            ast.OrderItem(subst.output(o.expr), o.ascending) for o in query.order_by
        )
        return ast.Select(
            items=items,
            from_items=(ast.TableName("__v"),),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=query.limit,
            distinct=query.distinct,
        )


class _CompositionState:
    def __init__(self, subplans: list[SubPlan]) -> None:
        self.subplans = subplans


class _PlanState:
    def __init__(self, query: ast.Select, bindings: BindingContext, rewriter: ServerRewriter):
        self.query = query
        self.bindings = bindings
        self.rewriter = rewriter
        self.remote_from: tuple = ()
        self.server_where: list[ast.Expr] = []
        self.pushed_plain: list[ast.Expr] = []
        self.local_filters: list[ast.Expr] = []
        self.server_group_by: tuple = ()
        self.group_pushed = True
        self.server_having: ast.Expr | None = None
        self.local_having: ast.Expr | None = None
        self.server_order_by: tuple = ()
        self.server_limit: int | None = None
        self.subplans: list[SubPlan] = []
        self.needs_unnest = False
        # Fetch list: ordered (remote_expr, spec); names unique.
        self.fetches: list[tuple[ast.Expr, DecryptSpec]] = []
        self.fetch_specs: dict[str, DecryptSpec] = {}
        self.hom_fetches: dict = {}
        self.agg_plans: dict[str, tuple] = {}
        self.agg_virtual_names: dict[str, str] = {}

    def has_fetch(self, name: str) -> bool:
        return name in self.fetch_specs

    def add_fetch(self, name: str, remote: ast.Expr, spec: DecryptSpec) -> None:
        if name in self.fetch_specs:
            return
        self.fetches.append((remote, spec))
        self.fetch_specs[name] = spec

    def upgrade_to_grp(self, name: str) -> None:
        """A component fetched as a scalar is also needed per-row inside a
        group: wrap its remote expression in grp() and its spec in a grp
        spec."""
        for i, (remote, spec) in enumerate(self.fetches):
            if spec.output_name == name and spec.kind not in ("grp", "hom", "plain"):
                new_spec = DecryptSpec(
                    "grp", name, spec.sql_type, elem_kind=spec.kind
                )
                self.fetches[i] = (ast.FuncCall("grp", (remote,)), new_spec)
                self.fetch_specs[name] = new_spec
                return


class _Substituter:
    """Rewrites original plaintext expressions into residual-query
    expressions over the virtual relation's columns."""

    def __init__(self, state: _PlanState) -> None:
        self.state = state

    def output(self, expr: ast.Expr) -> ast.Expr:
        """Substitute an output expression (aggregates handled per mode)."""
        state = self.state
        if ast.is_aggregate_call(expr):
            name = to_sql(expr)
            plan = state.agg_plans.get(name)
            if plan is None:
                if state.group_pushed:
                    raise PlanningError(f"aggregate {name} was not planned")
                return self._subst_through_aggregate(expr)
            kind = plan[0]
            if kind in ("plain", "ope"):
                column = ast.Column(name)
                return self._wrap_if_unnest(column)
            if kind == "hom":
                column = ast.Column(state.agg_virtual_names[name])
                return self._wrap_if_unnest(column)
            # grp: re-aggregate over unnested rows.
            if expr.star:
                return expr
            new_args = tuple(self.components_only(a) for a in expr.args)
            return ast.FuncCall(expr.name, new_args, expr.distinct, expr.star)
        if isinstance(expr, (ast.Literal, ast.Param, ast.Interval)):
            return expr
        name = to_sql(expr)
        if self.state.has_fetch(name):
            return ast.Column(name)
        rebuilt = ast._rebuild_children(expr, self.output)
        return rebuilt

    def components_only(self, expr: ast.Expr) -> ast.Expr:
        """Substitute leaf components without aggregate handling."""
        if isinstance(expr, (ast.Literal, ast.Param, ast.Interval)):
            return expr
        name = to_sql(expr)
        if self.state.has_fetch(name):
            return ast.Column(name)
        return ast._rebuild_children(expr, self.components_only)

    def _wrap_if_unnest(self, column: ast.Column) -> ast.Expr:
        if self.state.needs_unnest:
            # Per-group scalars replicate across unnested rows; MIN collapses
            # them back to the single value.
            return ast.FuncCall("min", (column,))
        return column

    def _subst_through_aggregate(self, expr: ast.FuncCall) -> ast.Expr:
        new_args = tuple(self.components_only(a) for a in expr.args)
        return ast.FuncCall(expr.name, new_args, expr.distinct, expr.star)


def _flatten(refs) -> list[ast.TableRef]:
    out: list[ast.TableRef] = []
    for ref in refs:
        if isinstance(ref, ast.Join):
            out.extend(_flatten([ref.left, ref.right]))
        else:
            out.append(ref)
    return out
