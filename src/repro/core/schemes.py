"""Encryption scheme metadata — the paper's Table 1 as code.

Each scheme records which SQL operations it enables on the untrusted server
and what its ciphertexts leak at rest.  The designer uses the leakage rank
to report the security profile (Table 3) and to honor per-column scheme
ceilings (§9's "minimum security thresholds").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Scheme(str, Enum):
    """Encryption schemes available to the designer."""

    RND = "rnd"  # Randomized AES-CTR: no server computation, no leakage.
    DET = "det"  # Deterministic (CMC/FFX): =, IN, GROUP BY, equi-join.
    OPE = "ope"  # Order-preserving: <, MAX/MIN, ORDER BY.
    HOM = "hom"  # Paillier: addition, SUM.
    SEARCH = "search"  # SWP tags: LIKE (single pattern).

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SchemeInfo:
    scheme: Scheme
    operations: tuple[str, ...]
    leakage: str
    leakage_rank: int  # 0 = leaks nothing; higher = leaks more.


SCHEME_TABLE: dict[Scheme, SchemeInfo] = {
    Scheme.RND: SchemeInfo(
        Scheme.RND,
        operations=(),
        leakage="none",
        leakage_rank=0,
    ),
    Scheme.HOM: SchemeInfo(
        Scheme.HOM,
        operations=("a + b", "SUM(a)"),
        leakage="none",
        leakage_rank=0,
    ),
    Scheme.SEARCH: SchemeInfo(
        Scheme.SEARCH,
        operations=("a LIKE pattern",),
        leakage="none at rest; matching rows per query",
        leakage_rank=1,
    ),
    Scheme.DET: SchemeInfo(
        Scheme.DET,
        operations=("a = const", "IN", "GROUP BY", "equi-join"),
        leakage="duplicates",
        leakage_rank=2,
    ),
    Scheme.OPE: SchemeInfo(
        Scheme.OPE,
        operations=("a > const", "MAX", "ORDER BY"),
        leakage="order + partial plaintext",
        leakage_rank=3,
    ),
}


def weakest(schemes: set[Scheme]) -> Scheme | None:
    """The most-leaking scheme in a set (how Table 3 classifies columns)."""
    if not schemes:
        return None
    return max(schemes, key=lambda s: SCHEME_TABLE[s].leakage_rank)
