"""Client-side encrypted DML: INSERT / UPDATE / DELETE over ciphertexts.

The paper's prototype is read-only after the bulk load; this module extends
the split client/server model to incremental writes while preserving its
trust boundary: the server never sees plaintext, and every write it receives
went through the same batch-encrypt pipeline as the loader.

Three states stay in lockstep per statement:

* the **encrypted tables** — new rows encrypted columnar through the
  provider's batch APIs and shipped via the backend's state-idempotent
  write surface (``insert_rows`` behind the row-count watermark,
  ``delete_rows``/``replace_rows`` keyed by exact stored tuples);
* the **packed Paillier files** — patched *in place* by ciphertext
  multiplication: a slot delta ``d`` becomes one multiply by
  ``E(d · 2^slot_offset mod n)``; negative deltas ride the modular
  complement, exact because the packed plaintext always stays below ``n``.
  Deleted rows' slots are zeroed so the maintained file is byte-equivalent
  to re-encrypting from scratch (``hom_agg`` never reads dead slots, but
  the equivalence is what the maintenance tests pin);
* the **plaintext mirror** — the client's ``plain_db`` copy that feeds
  the planner's statistics.

UPDATE/DELETE cannot re-derive stored ciphertexts client-side (RND is
randomized), so they first fetch the encrypted rows, decrypt one fetchable
copy per column (DET preferred, then RND, then OPE — ``complete_design``
guarantees one exists), evaluate the predicate on plaintext, and echo the
exact fetched tuples back to the backend.  All writes retry under the
transient-fault policy: inserts resume from the watermark, deletes and
replaces are state-idempotent, and homomorphic patches carry a dedup token
so a lost ack never applies a delta twice.
"""

from __future__ import annotations

import itertools
import os
import random

from repro.common.errors import ConfigError, DesignError, UnsupportedQueryError
from repro.common.ledger import CostLedger
from repro.common.retry import RetryPolicy, retry_call
from repro.core.loader import EncryptedLoader, complete_design, insert_rows_idempotent
from repro.core.schemes import Scheme
from repro.crypto.packing import PackedLayout
from repro.engine.eval import EvalContext, Scope, compile_expr
from repro.engine.executor import ResultSet
from repro.sql import ast, parse_expression
from repro.storage.rowcodec import row_bytes

#: Scheme preference when decrypting a fetched column copy: DET is
#: integer-sized and cheap, RND is the universal fallback, OPE works but
#: is the most expensive to have materialized.
_FETCH_RANK = {Scheme.DET: 0, Scheme.RND: 1, Scheme.OPE: 2}


class DmlExecutor:
    """Runs normalized DML statements for one :class:`MonomiClient`.

    Holds no state beyond retry plumbing and the completed design; safe to
    rebuild at any time.  ``listeners`` (e.g. maintained aggregates, see
    :mod:`repro.core.incagg`) receive ``on_change(table, inserted,
    deleted)`` with plaintext rows after each successful statement.
    """

    def __init__(self, client, backend=None) -> None:
        self.client = client
        self.plain_db = client.plain_db
        self.provider = client.provider
        # ``backend`` override: the service layer binds DML to a worker
        # view so each backend call serializes against concurrent readers.
        self.backend = backend if backend is not None else client.backend
        self.network = client.network
        # The loader completed the design before encrypting (every base
        # column got a fetchable copy); DML must see those same columns.
        self.design = complete_design(client.design, client.plain_db)
        self._loader = EncryptedLoader(client.plain_db, client.provider)
        self.retry_policy = RetryPolicy()
        self._retry_rng = random.Random(0xD331)
        self._token_prefix = os.urandom(6).hex()
        self._token_seq = itertools.count()
        self.listeners: list = []

    # -- entry point -----------------------------------------------------------

    def execute(self, statement) -> tuple[ResultSet, CostLedger]:
        ledger = CostLedger()
        if isinstance(statement, ast.Insert):
            count = self._insert(statement, ledger)
        elif isinstance(statement, ast.Update):
            count = self._update(statement, ledger)
        elif isinstance(statement, ast.Delete):
            count = self._delete(statement, ledger)
        else:
            raise UnsupportedQueryError(f"not a DML statement: {statement!r}")
        return ResultSet(["rows_affected"], [(count,)]), ledger

    # -- INSERT ----------------------------------------------------------------

    def _insert(self, stmt: ast.Insert, ledger: CostLedger) -> int:
        plain, entries, exprs, hom_groups, _, scope = self._layout(stmt.table)
        new_rows = self._literal_rows(stmt, plain.schema)
        if not new_rows:
            return 0
        for row in new_rows:
            plain._validate(row)  # Reject bad types before anything ships.
        with ledger.timing_client():
            enc_rows = self._encrypt_rows(new_rows, entries, exprs, scope)
            patches = []
            if hom_groups:
                # row_ids continue from the hom files' row space, which
                # never shrinks under DELETE (slots are zeroed, not
                # compacted) — the table's row count is NOT the base.
                base = self.backend.hom_file_info(hom_groups[0].file_name)[
                    "num_rows"
                ]
                enc_rows = [
                    row + (rid,)
                    for row, rid in zip(
                        enc_rows, range(base, base + len(new_rows))
                    )
                ]
                patches = [
                    self._hom_insert_patch(group, new_rows, base, scope)
                    for group in hom_groups
                ]
        self._charge_rows(ledger, enc_rows)
        insert_rows_idempotent(
            self.backend,
            stmt.table,
            enc_rows,
            self.retry_policy,
            self._retry_rng,
            on_retry=lambda _attempt, _exc: self._count_retry(ledger),
        )
        for group, patch in zip(hom_groups, patches):
            self._apply_hom(group, patch, ledger)
        plain.insert_many(new_rows)
        self._notify(stmt.table, inserted=new_rows, deleted=[])
        return len(new_rows)

    def _literal_rows(self, stmt: ast.Insert, schema) -> list[tuple]:
        names = list(schema.column_names)
        if stmt.columns:
            positions = []
            for col in stmt.columns:
                if col not in names:
                    raise ConfigError(
                        f"unknown column {col!r} in INSERT into {stmt.table!r}"
                    )
                positions.append(names.index(col))
            if len(set(positions)) != len(positions):
                raise ConfigError(f"duplicate column in INSERT into {stmt.table!r}")
        else:
            positions = list(range(len(names)))
        ctx = EvalContext()
        empty = Scope([])
        rows: list[tuple] = []
        for value_row in stmt.rows:
            if len(value_row) != len(positions):
                raise ConfigError(
                    f"INSERT into {stmt.table!r}: {len(value_row)} values "
                    f"for {len(positions)} columns"
                )
            filled: list = [None] * len(names)
            for pos, expr in zip(positions, value_row):
                filled[pos] = compile_expr(expr, empty, ctx)(())
            rows.append(tuple(filled))
        return rows

    # -- UPDATE ----------------------------------------------------------------

    def _update(self, stmt: ast.Update, ledger: CostLedger) -> int:
        plain, entries, exprs, hom_groups, enc_schema, scope = self._layout(
            stmt.table
        )
        names = list(plain.schema.column_names)
        for a in stmt.assignments:
            if a.column not in names:
                raise ConfigError(
                    f"unknown column {a.column!r} in UPDATE {stmt.table!r}"
                )
        stored, plain_rows = self._fetch_decrypted(
            stmt.table, plain, entries, exprs, enc_schema, ledger
        )
        matched = self._matched(stmt.where, scope, plain_rows)
        if not matched:
            return 0
        ctx = EvalContext()
        assign_fns = [
            (names.index(a.column), compile_expr(a.value, scope, ctx))
            for a in stmt.assignments
        ]
        old_plain = [plain_rows[i] for i in matched]
        new_plain: list[tuple] = []
        for row in old_plain:
            out = list(row)
            for idx, fn in assign_fns:
                out[idx] = fn(row)  # SQL semantics: RHS sees the old row.
            candidate = tuple(out)
            plain._validate(candidate)
            new_plain.append(candidate)
        with ledger.timing_client():
            new_enc = self._encrypt_rows(new_plain, entries, exprs, scope)
            patches = []
            if hom_groups:
                row_ids = [stored[i][-1] for i in matched]
                new_enc = [
                    row + (rid,) for row, rid in zip(new_enc, row_ids)
                ]
                patches = [
                    self._hom_delta_patch(
                        group, old_plain, new_plain, row_ids, scope
                    )
                    for group in hom_groups
                ]
        pairs = [(stored[i], new) for i, new in zip(matched, new_enc)]
        self._charge_rows(ledger, [new for _, new in pairs])
        retry_call(
            lambda: self.backend.replace_rows(stmt.table, pairs),
            self.retry_policy,
            rng=self._retry_rng,
            on_retry=lambda _attempt, _exc: self._count_retry(ledger),
        )
        for group, patch in zip(hom_groups, patches):
            self._apply_hom(group, patch, ledger)
        plain.replace_exact(list(zip(old_plain, new_plain)))
        self._notify(stmt.table, inserted=new_plain, deleted=old_plain)
        return len(matched)

    # -- DELETE ----------------------------------------------------------------

    def _delete(self, stmt: ast.Delete, ledger: CostLedger) -> int:
        plain, entries, exprs, hom_groups, enc_schema, scope = self._layout(
            stmt.table
        )
        stored, plain_rows = self._fetch_decrypted(
            stmt.table, plain, entries, exprs, enc_schema, ledger
        )
        matched = self._matched(stmt.where, scope, plain_rows)
        if not matched:
            return 0
        old_enc = [stored[i] for i in matched]
        old_plain = [plain_rows[i] for i in matched]
        patches = []
        if hom_groups:
            with ledger.timing_client():
                row_ids = [stored[i][-1] for i in matched]
                patches = [
                    self._hom_delta_patch(group, old_plain, None, row_ids, scope)
                    for group in hom_groups
                ]
        self._charge_rows(ledger, old_enc)
        retry_call(
            lambda: self.backend.delete_rows(stmt.table, old_enc),
            self.retry_policy,
            rng=self._retry_rng,
            on_retry=lambda _attempt, _exc: self._count_retry(ledger),
        )
        for group, patch in zip(hom_groups, patches):
            self._apply_hom(group, patch, ledger)
        plain.delete_exact(old_plain)
        self._notify(stmt.table, inserted=[], deleted=old_plain)
        return len(matched)

    # -- shared plumbing -------------------------------------------------------

    def _layout(self, table_name: str):
        if table_name not in self.plain_db.tables:
            raise ConfigError(f"unknown table {table_name!r}")
        plain, entries, exprs, hom_groups, enc_schema, scope = (
            self._loader._table_layout(table_name, self.design)
        )
        return plain, entries, exprs, hom_groups, enc_schema, scope

    def _encrypt_rows(self, plain_rows, entries, exprs, scope) -> list[tuple]:
        """Columnar encrypt: one compiled expression + one batch-crypto
        dispatch per design entry, then transpose back to rows."""
        ctx = EvalContext()
        columns: list[list] = []
        for entry, expr in zip(entries, exprs):
            fn = compile_expr(expr, scope, ctx)
            values = [fn(row) for row in plain_rows]
            columns.append(self._loader._encrypt_column(values, entry.scheme))
        if columns:
            return list(zip(*columns))
        return [() for _ in plain_rows]

    def _fetch_decrypted(
        self, table_name, plain, entries, exprs, enc_schema, ledger
    ) -> tuple[list[tuple], list[tuple]]:
        """Fetch every stored encrypted row plus a decrypted plaintext view.

        The stored tuples are the backend's exact representation — RND is
        not reproducible client-side, so deletes/replaces must echo these
        values back verbatim to identify rows.
        """
        query = ast.Select(
            items=tuple(
                ast.SelectItem(ast.Column(c.name)) for c in enc_schema.columns
            ),
            from_items=(ast.TableName(table_name),),
        )
        result = retry_call(
            lambda: self.backend.execute(query),
            self.retry_policy,
            rng=self._retry_rng,
            on_retry=lambda _attempt, _exc: self._count_retry(ledger),
        )
        stored = [tuple(row) for row in result.rows]
        ledger.server_bytes_scanned += self.backend.table_bytes(table_name)
        ledger.add_transfer(result.byte_size(), self.network)
        with ledger.timing_client():
            decrypted: list[list] = []
            for col in plain.schema.columns:
                pos, entry = self._fetchable_entry(entries, exprs, col.name)
                column = [row[pos] for row in stored]
                decrypted.append(
                    self.provider.decrypt_batch(
                        column, entry.scheme.value, col.type
                    )
                )
            plain_rows = [tuple(vals) for vals in zip(*decrypted)] if stored else []
        return stored, plain_rows

    def _fetchable_entry(self, entries, exprs, column_name: str):
        best = None
        for pos, (entry, expr) in enumerate(zip(entries, exprs)):
            if (
                isinstance(expr, ast.Column)
                and expr.name == column_name
                and entry.scheme in _FETCH_RANK
            ):
                if best is None or _FETCH_RANK[entry.scheme] < _FETCH_RANK[
                    best[1].scheme
                ]:
                    best = (pos, entry)
        if best is None:
            raise DesignError(
                f"no decryptable copy of column {column_name!r} "
                "(complete_design should have added one)"
            )
        return best

    def _matched(self, where, scope, plain_rows) -> list[int]:
        if where is None:
            return list(range(len(plain_rows)))
        fn = compile_expr(where, scope, EvalContext())
        return [i for i, row in enumerate(plain_rows) if fn(row)]

    def _charge_rows(self, ledger: CostLedger, rows) -> None:
        ledger.add_transfer(
            sum(4 + row_bytes(row) for row in rows), self.network
        )

    @staticmethod
    def _count_retry(ledger: CostLedger) -> None:
        ledger.retries += 1

    def _notify(self, table: str, inserted, deleted) -> None:
        for listener in self.listeners:
            listener.on_change(table, inserted=inserted, deleted=deleted)

    # -- homomorphic maintenance ----------------------------------------------

    def _hom_facts(self, group):
        info = self.backend.hom_file_info(group.file_name)
        layout = PackedLayout(
            column_bits=tuple(info["column_bits"]),
            pad_bits=info["pad_bits"],
            plaintext_bits=info["plaintext_bits"],
        )
        return info, layout

    def _group_values(self, group, plain_rows, scope) -> list[list[int]]:
        """Packed-column plaintext matrix for rows (None -> 0, the
        additive identity — mirrors the loader's packing rules)."""
        ctx = EvalContext()
        matrix: list[list[int]] = [[] for _ in plain_rows]
        for sql in group.expr_sqls:
            fn = compile_expr(parse_expression(sql), scope, ctx)
            for values, row in zip(matrix, plain_rows):
                value = fn(row)
                if value is None:
                    value = 0
                if not isinstance(value, int) or isinstance(value, bool):
                    raise DesignError(
                        f"homomorphic column {group.table}:{sql!r} must be "
                        f"integer-valued, got {value!r}"
                    )
                if value < 0:
                    raise DesignError(
                        "homomorphic packing requires non-negative values "
                        f"(got {value} in {group.table})"
                    )
                values.append(value)
        return matrix

    def _check_widths(self, group, layout: PackedLayout, matrix) -> None:
        for row in matrix:
            for c, value in enumerate(row):
                if value.bit_length() > layout.column_bits[c]:
                    raise DesignError(
                        f"value {value} overflows packed column "
                        f"{group.expr_sqls[c]!r} ({layout.column_bits[c]} "
                        f"bits) in {group.file_name!r}; the layout is frozen "
                        "at load time — reload to widen it"
                    )

    def _hom_insert_patch(self, group, new_rows, base: int, scope) -> dict:
        """Slot patches + whole new ciphertexts for appended rows.

        Rows landing inside the existing partial last ciphertext become a
        multiply (empty slots encrypt zero by construction, so adding the
        value *sets* the slot); rows past its capacity pack into fresh
        ciphertexts, aligned at slot 0.
        """
        info, layout = self._hom_facts(group)
        if info["num_rows"] != base:
            raise DesignError(
                f"hom files of table {group.table!r} disagree on row count "
                f"({info['num_rows']} vs {base}) — store is corrupt"
            )
        matrix = self._group_values(group, new_rows, scope)
        self._check_widths(group, layout, matrix)
        rows_per_ct = layout.rows_per_ciphertext
        new_total = base + len(new_rows)
        if new_total > layout.max_safe_rows():
            raise DesignError(
                f"hom file {group.file_name!r} would exceed its overflow "
                f"headroom ({layout.max_safe_rows()} rows); reload with "
                "larger pad_bits"
            )
        capacity = info["num_ciphertexts"] * rows_per_ct
        boundary = min(len(matrix), max(0, capacity - base))
        update_plain: dict[int, int] = {}
        for offset in range(boundary):
            row_id = base + offset
            ct_index, slot = divmod(row_id, rows_per_ct)
            patch = 0
            for c, value in enumerate(matrix[offset]):
                patch += value << layout.slot_offset(slot, c)
            if patch:
                update_plain[ct_index] = update_plain.get(ct_index, 0) + patch
        tail = matrix[boundary:]
        appended_plain = [
            layout.encode_rows(tail[i : i + rows_per_ct])
            for i in range(0, len(tail), rows_per_ct)
        ]
        indices = sorted(update_plain)
        ciphertexts = self.provider.paillier_encrypt_batch(
            [update_plain[i] for i in indices] + appended_plain
        )
        updates = list(zip(indices, ciphertexts[: len(indices)]))
        return {
            "updates": updates,
            "appended": ciphertexts[len(indices) :],
            "num_rows": new_total,
        }

    def _hom_delta_patch(
        self, group, old_rows, new_rows, row_ids, scope
    ) -> dict:
        """In-place slot deltas for UPDATE (new - old) or DELETE (zero out).

        One multiply per touched ciphertext: per-row deltas for the rows it
        covers are summed into a single patch plaintext.  Negative deltas
        use the modular complement — exact, because the packed plaintext
        after the patch is again a valid packing below ``n``.
        """
        _, layout = self._hom_facts(group)
        old_matrix = self._group_values(group, old_rows, scope)
        if new_rows is None:
            new_matrix = [[0] * len(group.expr_sqls) for _ in old_rows]
        else:
            new_matrix = self._group_values(group, new_rows, scope)
            self._check_widths(group, layout, new_matrix)
        n = self.provider.paillier_public.n
        deltas: dict[int, int] = {}
        for row_id, old, new in zip(row_ids, old_matrix, new_matrix):
            ct_index, slot = divmod(row_id, layout.rows_per_ciphertext)
            patch = 0
            for c, (old_value, new_value) in enumerate(zip(old, new)):
                patch += (new_value - old_value) << layout.slot_offset(slot, c)
            if patch:
                deltas[ct_index] = deltas.get(ct_index, 0) + patch
        update_plain = {i: p % n for i, p in deltas.items() if p % n}
        indices = sorted(update_plain)
        ciphertexts = self.provider.paillier_encrypt_batch(
            [update_plain[i] for i in indices]
        )
        return {
            "updates": list(zip(indices, ciphertexts)),
            "appended": [],
            "num_rows": None,
        }

    def _apply_hom(self, group, patch: dict, ledger: CostLedger) -> None:
        if (
            not patch["updates"]
            and not patch["appended"]
            and patch["num_rows"] is None
        ):
            return
        token = f"dml-{self._token_prefix}-{next(self._token_seq)}"
        ct_bytes = self.provider.paillier_public.ciphertext_bytes
        ledger.add_transfer(
            ct_bytes * (len(patch["updates"]) + len(patch["appended"])),
            self.network,
        )
        retry_call(
            lambda: self.backend.hom_apply(
                group.file_name,
                updates=patch["updates"],
                appended=patch["appended"],
                num_rows=patch["num_rows"],
                token=token,
            ),
            self.retry_policy,
            rng=self._retry_rng,
            on_retry=lambda _attempt, _exc: self._count_retry(ledger),
        )
