"""Physical design model: what encrypted columns exist on the server.

A design is a set of :class:`EncEntry` — ⟨value, scheme⟩ pairs in the
paper's terminology (§6.2): the value is either a base column or a
per-row precomputed expression (§5.1), identified by its normalized SQL
text relative to one table.  Homomorphic entries additionally belong to a
:class:`HomGroup`, the packed-Paillier layout the designer chose for them
(§5.2–§5.3).

:class:`TechniqueFlags` gates the paper's individual optimizations so the
Figure 5 / Figure 6 experiments can enable them one at a time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.errors import DesignError
from repro.core.schemes import Scheme
from repro.sql import ast, parse_expression, to_sql


def normalize_expr(expr: ast.Expr | str) -> str:
    """Canonical text for an expression (identity for EncSet membership)."""
    if isinstance(expr, str):
        expr = parse_expression(expr)
    return to_sql(expr)


def expr_of(text: str) -> ast.Expr:
    return parse_expression(text)


def enc_column_name(expr_sql: str, scheme: Scheme) -> str:
    """Server-side column name for an encrypted value.

    Base columns keep readable names (``l_quantity_det``); precomputed
    expressions get a stable hash (``pc_1a2b3c4d_ope``), mirroring the
    paper's ``precomp_DET`` columns.
    """
    expr = parse_expression(expr_sql)
    if isinstance(expr, ast.Column):
        return f"{expr.name}_{scheme.value}"
    digest = hashlib.sha1(expr_sql.encode()).hexdigest()[:8]
    return f"pc_{digest}_{scheme.value}"


@dataclass(frozen=True)
class EncEntry:
    """One ⟨value, scheme⟩ pair: an encrypted column on the server."""

    table: str
    expr_sql: str  # Normalized via normalize_expr.
    scheme: Scheme

    @property
    def is_precomputed(self) -> bool:
        return not isinstance(parse_expression(self.expr_sql), ast.Column)

    @property
    def column_name(self) -> str:
        return enc_column_name(self.expr_sql, self.scheme)

    def __repr__(self) -> str:
        return f"<{self.table}:{self.expr_sql}:{self.scheme.value}>"


@dataclass(frozen=True)
class HomGroup:
    """One packed Paillier ciphertext file (§5.3 grouped addition).

    ``expr_sqls`` are the table-relative expressions packed per row, in slot
    order.  ``rows_per_ciphertext`` = 1 is per-row packing (multi-column
    only); > 1 is the §5.2 columnar packing.
    """

    table: str
    expr_sqls: tuple[str, ...]
    rows_per_ciphertext: int = 1

    def __post_init__(self) -> None:
        if not self.expr_sqls:
            raise DesignError("empty homomorphic group")
        if self.rows_per_ciphertext < 1:
            raise DesignError("rows_per_ciphertext must be >= 1")

    @property
    def file_name(self) -> str:
        digest = hashlib.sha1(
            ("|".join(self.expr_sqls) + f"#{self.rows_per_ciphertext}").encode()
        ).hexdigest()[:8]
        return f"{self.table}_hom_{digest}"

    def covers(self, expr_sql: str) -> bool:
        return expr_sql in self.expr_sqls


@dataclass(frozen=True)
class TechniqueFlags:
    """Which of §5's optimizations the designer/planner may use.

    The names follow Figure 5's cumulative configurations:
    ``col_packing`` packs multiple columns per Paillier ciphertext,
    ``precomputation`` materializes per-row expressions, ``columnar_agg``
    packs multiple rows per ciphertext, ``prefilter`` enables conservative
    pre-filtering, and ``optimizing_planner`` replaces greedy
    execute-everything-on-server with cost-based plan choice.
    """

    col_packing: bool = True
    precomputation: bool = True
    columnar_agg: bool = True
    prefilter: bool = True
    optimizing_planner: bool = True

    @staticmethod
    def cryptdb_client() -> "TechniqueFlags":
        return TechniqueFlags(False, False, False, False, False)

    @staticmethod
    def execution_greedy() -> "TechniqueFlags":
        return TechniqueFlags(True, True, True, True, False)

    @staticmethod
    def all_enabled() -> "TechniqueFlags":
        return TechniqueFlags(True, True, True, True, True)


@dataclass
class PhysicalDesign:
    """The complete server-side encrypted layout."""

    entries: set[EncEntry] = field(default_factory=set)
    hom_groups: list[HomGroup] = field(default_factory=list)

    # -- construction ---------------------------------------------------------

    def add(self, table: str, expr: ast.Expr | str, scheme: Scheme) -> EncEntry:
        entry = EncEntry(table, normalize_expr(expr), scheme)
        self.entries.add(entry)
        return entry

    def add_hom_group(self, group: HomGroup) -> None:
        if group not in self.hom_groups:
            self.hom_groups.append(group)
        for expr_sql in group.expr_sqls:
            self.entries.add(EncEntry(group.table, expr_sql, Scheme.HOM))

    # -- lookup ----------------------------------------------------------------

    def has(self, table: str, expr: ast.Expr | str, scheme: Scheme) -> bool:
        return EncEntry(table, normalize_expr(expr), scheme) in self.entries

    def entry_for(self, table: str, expr: ast.Expr | str, scheme: Scheme) -> EncEntry | None:
        entry = EncEntry(table, normalize_expr(expr), scheme)
        return entry if entry in self.entries else None

    def schemes_for(self, table: str, expr: ast.Expr | str) -> set[Scheme]:
        text = normalize_expr(expr)
        return {e.scheme for e in self.entries if e.table == table and e.expr_sql == text}

    def hom_group_for(self, table: str, expr: ast.Expr | str) -> HomGroup | None:
        text = normalize_expr(expr)
        for group in self.hom_groups:
            if group.table == table and group.covers(text):
                return group
        return None

    def table_entries(self, table: str) -> list[EncEntry]:
        return sorted(
            (e for e in self.entries if e.table == table),
            key=lambda e: (e.expr_sql, e.scheme.value),
        )

    def tables(self) -> list[str]:
        return sorted({e.table for e in self.entries})

    def fingerprint(self) -> str:
        """Stable digest of the design's content, for plan-cache keying.

        Two designs with the same ⟨table, expression, scheme⟩ entries and
        the same homomorphic groups produce the same fingerprint
        regardless of construction order; any entry added or removed
        changes it.  The service layer keys its plan cache on
        ⟨normalized SQL, design fingerprint⟩ so cached plans can never
        outlive the physical design they were planned against.
        """
        entries = sorted(
            (e.table, e.expr_sql, e.scheme.value) for e in self.entries
        )
        groups = sorted(
            (g.table, g.expr_sqls, g.rows_per_ciphertext)
            for g in self.hom_groups
        )
        payload = repr((entries, groups)).encode()
        return hashlib.sha1(payload).hexdigest()[:16]

    def copy(self) -> "PhysicalDesign":
        return PhysicalDesign(set(self.entries), list(self.hom_groups))

    def union(self, other: "PhysicalDesign") -> "PhysicalDesign":
        merged = self.copy()
        merged.entries |= other.entries
        for group in other.hom_groups:
            if group not in merged.hom_groups:
                merged.hom_groups.append(group)
        return merged

    def without_entry(self, entry: EncEntry) -> "PhysicalDesign":
        out = self.copy()
        out.entries.discard(entry)
        if entry.scheme is Scheme.HOM:
            out.hom_groups = [
                g
                for g in out.hom_groups
                if not (g.table == entry.table and g.covers(entry.expr_sql))
            ]
            # Keep HOM entries that some remaining group still covers.
            out.entries = {
                e
                for e in out.entries
                if e.scheme is not Scheme.HOM
                or any(
                    g.table == e.table and g.covers(e.expr_sql) for g in out.hom_groups
                )
            }
        return out

    def __repr__(self) -> str:
        return (
            f"PhysicalDesign({len(self.entries)} entries, "
            f"{len(self.hom_groups)} hom groups)"
        )
