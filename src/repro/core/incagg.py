"""Incrementally maintained encrypted aggregates (MRV-style split counters).

A maintained aggregate keeps ``SUM(expr)`` over one table as Paillier
ciphertexts on the untrusted server, updated in place on every DML
statement instead of re-aggregated by scanning.  The server still learns
nothing: it multiplies ciphertexts it cannot decrypt.

**Why split counters.**  A single encrypted accumulator is a hot record —
every writer would serialize on one ciphertext (and in a replicated or
sharded deployment, conflict on it).  Following the MRV (multi-record
value) pattern, the value is *split* across ``MONOMI_MRV_SPLITS``
ciphertext records; each delta lands on a randomly chosen split, so
concurrent writers contend on ``1/N`` of the records.  The aggregate's
value is the sum of all splits, which any reader recovers with one
``hom_read`` of the split vector and one decryption per split.

Splits drift apart under skewed workloads (one split absorbs most
deltas), which does not affect correctness but concentrates future
contention; :meth:`MaintainedAggregates.balance_now` re-levels them with
a zero-sum patch vector (subtract from the hot splits, add to the cold
ones — the total is invariant by construction), and
:meth:`MaintainedAggregates.start_balancer` runs that re-leveling on a
background thread.

Negative totals ride the modular complement: each split holds an
arbitrary mod-``n`` residue, the client sums the decrypted residues
mod ``n`` and re-centers (``v > n/2  →  v − n``).

Registration writes the initial split vector through
``add_ciphertext_file``, so it needs a backend that accepts bulk-load
state (in-memory, SQLite, sharded coordinator).  Maintenance itself uses
only the ``hom_apply``/``hom_read`` write surface and works over the wire.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
from dataclasses import dataclass

from repro.common.errors import ConfigError, DesignError
from repro.common.retry import RetryPolicy, retry_call
from repro.crypto.packing import PackedLayout
from repro.engine.eval import EvalContext, Scope, compile_expr
from repro.sql import parse_expression
from repro.storage.ciphertext_store import CiphertextFile

#: Default number of split records per maintained aggregate.
DEFAULT_SPLITS = 4


def resolve_splits(splits: int | None = None) -> int:
    if splits is not None:
        return max(1, int(splits))
    return max(1, int(os.environ.get("MONOMI_MRV_SPLITS", DEFAULT_SPLITS)))


@dataclass
class _Registered:
    name: str
    table: str
    expr_sql: str
    file_name: str
    splits: int
    fn: object  # Compiled plaintext delta evaluator.


class MaintainedAggregates:
    """Registry of incrementally maintained encrypted SUMs for one client.

    Subscribes to the client's DML executor: after every successful
    INSERT/UPDATE/DELETE it receives the plaintext delta rows and applies
    ``E(delta mod n)`` to a randomly chosen split of each registered
    aggregate over the affected table.
    """

    def __init__(
        self,
        client,
        splits: int | None = None,
        seed: int = 0xA66,
    ) -> None:
        self.client = client
        self.provider = client.provider
        self.backend = client.backend
        self.splits = resolve_splits(splits)
        self._rng = random.Random(seed)
        self._aggs: dict[str, _Registered] = {}
        self._lock = threading.RLock()
        self._token_prefix = os.urandom(4).hex()
        self._token_seq = itertools.count()
        self.retry_policy = RetryPolicy()
        self._retry_rng = random.Random(0xBA1A)
        self._balancer: threading.Thread | None = None
        self._stop = threading.Event()
        client.dml.listeners.append(self)

    # -- registration ----------------------------------------------------------

    def register(self, name: str, table: str, expr_sql: str) -> None:
        """Start maintaining ``SUM(expr_sql)`` over ``table`` as ``name``.

        Seeds the split vector from the client's plaintext mirror: split 0
        carries the current total, the rest encrypt zero (call
        :meth:`balance_now` to level them immediately).
        """
        with self._lock:
            if name in self._aggs:
                raise ConfigError(f"maintained aggregate {name!r} already exists")
            if table not in self.client.plain_db.tables:
                raise ConfigError(f"unknown table {table!r}")
            plain = self.client.plain_db.table(table)
            scope = Scope([(table, c) for c in plain.schema.column_names])
            fn = compile_expr(
                parse_expression(expr_sql), scope, EvalContext()
            )
            total = 0
            for row in plain.rows:
                total += self._int_value(fn(row), table, expr_sql)
            public = self.provider.paillier_public
            n = public.n
            # One residue per ciphertext: a full-width single-column layout
            # (rows_per_ciphertext == 1); pad bits are irrelevant because
            # splits are patched with raw mod-n residues, never packed.
            layout = PackedLayout(
                column_bits=(max(1, public.plaintext_bits - 4),),
                pad_bits=4,
                plaintext_bits=public.plaintext_bits,
            )
            plaintexts = [total % n] + [0] * (self.splits - 1)
            file = CiphertextFile(
                name=f"mrv_{name}",
                public_key=public,
                layout=layout,
                column_names=(expr_sql,),
                num_rows=self.splits,
            )
            file.ciphertexts.extend(
                self.provider.paillier_encrypt_batch(plaintexts)
            )
            self.backend.add_ciphertext_file(file)
            self._aggs[name] = _Registered(
                name, table, expr_sql, file.name, self.splits, fn
            )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._aggs)

    # -- DML subscription ------------------------------------------------------

    def on_change(self, table: str, inserted, deleted) -> None:
        """DML listener: fold the statement's plaintext delta into one
        randomly chosen split per registered aggregate on ``table``."""
        with self._lock:
            for agg in self._aggs.values():
                if agg.table != table:
                    continue
                delta = 0
                for row in inserted:
                    delta += self._int_value(agg.fn(row), table, agg.expr_sql)
                for row in deleted:
                    delta -= self._int_value(agg.fn(row), table, agg.expr_sql)
                if delta:
                    split = self._rng.randrange(agg.splits)
                    self._apply(agg, [(split, delta)])

    # -- reads -----------------------------------------------------------------

    def value(self, name: str) -> int:
        """Decrypt and sum every split (re-centering mod-n residues)."""
        with self._lock:
            agg = self._get(name)
            residues = self._split_residues(agg)
            n = self.provider.paillier_public.n
            total = sum(residues) % n
            return total - n if total > n // 2 else total

    def split_values(self, name: str) -> list[int]:
        """The per-split signed values (diagnostic / balance input)."""
        with self._lock:
            agg = self._get(name)
            n = self.provider.paillier_public.n
            return [
                v - n if v > n // 2 else v
                for v in self._split_residues(agg)
            ]

    # -- balancing -------------------------------------------------------------

    def balance_now(self, name: str | None = None) -> None:
        """Re-level splits with a zero-sum patch vector.

        Reads the current splits, computes each split's distance from the
        even share, and applies all corrections in one token-deduplicated
        ``hom_apply`` — the total is invariant by construction, so a
        balance racing readers only ever changes *distribution*.
        """
        with self._lock:
            names = [name] if name is not None else sorted(self._aggs)
            for agg_name in names:
                agg = self._get(agg_name)
                n = self.provider.paillier_public.n
                values = [
                    v - n if v > n // 2 else v
                    for v in self._split_residues(agg)
                ]
                total = sum(values)
                share, remainder = divmod(total, agg.splits)
                targets = [
                    share + (1 if i < remainder else 0)
                    for i in range(agg.splits)
                ]
                patches = [
                    (i, target - value)
                    for i, (value, target) in enumerate(zip(values, targets))
                    if target != value
                ]
                if patches:
                    self._apply(agg, patches)

    def start_balancer(self, interval: float = 0.5) -> None:
        """Run :meth:`balance_now` on a daemon thread every ``interval``
        seconds until :meth:`close`."""
        with self._lock:
            if self._balancer is not None:
                return
            self._stop.clear()

            def loop() -> None:
                while not self._stop.wait(interval):
                    try:
                        self.balance_now()
                    except Exception:  # pragma: no cover - backend teardown race
                        if self._stop.is_set():
                            return
                        raise

            self._balancer = threading.Thread(
                target=loop, name="mrv-balancer", daemon=True
            )
            self._balancer.start()

    def close(self) -> None:
        self._stop.set()
        balancer, self._balancer = self._balancer, None
        if balancer is not None:
            balancer.join(timeout=5.0)

    def __enter__(self) -> "MaintainedAggregates":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _get(self, name: str) -> _Registered:
        try:
            return self._aggs[name]
        except KeyError:
            raise ConfigError(f"unknown maintained aggregate {name!r}") from None

    @staticmethod
    def _int_value(value, table: str, expr_sql: str) -> int:
        if value is None:
            return 0
        if not isinstance(value, int) or isinstance(value, bool):
            raise DesignError(
                f"maintained aggregate over {table}:{expr_sql!r} must be "
                f"integer-valued, got {value!r}"
            )
        return value

    def _split_residues(self, agg: _Registered) -> list[int]:
        ciphertexts = retry_call(
            lambda: self.backend.hom_read(
                agg.file_name, list(range(agg.splits))
            ),
            self.retry_policy,
            rng=self._retry_rng,
        )
        return self.provider.paillier_decrypt_batch(ciphertexts)

    def _apply(self, agg: _Registered, patches: list[tuple[int, int]]) -> None:
        """Multiply ``E(delta mod n)`` into the chosen splits, exactly once."""
        n = self.provider.paillier_public.n
        factors = self.provider.paillier_encrypt_batch(
            [delta % n for _, delta in patches]
        )
        updates = [
            (split, factor)
            for (split, _), factor in zip(patches, factors)
        ]
        token = f"mrv-{self._token_prefix}-{next(self._token_seq)}"
        retry_call(
            lambda: self.backend.hom_apply(
                agg.file_name, updates=updates, token=token
            ),
            self.retry_policy,
            rng=self._retry_rng,
        )
