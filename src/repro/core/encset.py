"""EncSet extraction: §6.2 step 1 plus the §6.3 pruning units.

For each query the designer collects the ⟨value, scheme⟩ pairs that would
let each of its operations execute on the server, grouped into *units*
(§6.3): the planner's power-set enumeration toggles whole units — a WHERE
conjunct's pairs are useless individually (if one side of an OR cannot be
evaluated server-side, the whole clause comes to the client anyway).

Units emitted per query:

* one per top-level WHERE/JOIN conjunct (the paper's special case);
* one for the GROUP BY key list (all keys must push together);
* one per HAVING conjunct, plus a pre-filter unit (⟨x, OPE⟩) for
  ``SUM(x) > c`` conjuncts that cannot push (§5.4);
* per aggregate: a HOM unit for ``SUM``; an OPE unit for MIN/MAX; for
  composite SUM arguments also a DET precomputation unit (the Figure 3
  ``precomp_DET`` alternative where the client sums decrypted values);
* a DET precomputation unit per composite projection/group-key expression
  (§5.1);
* one OPE unit for the ORDER BY keys (enables ORDER BY + LIMIT pushdown).

Precomputation pairs are emitted only when the technique flag allows, and
only for single-table expressions (§5.1 considers per-row expressions
within one table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanningError
from repro.core.design import TechniqueFlags, normalize_expr
from repro.core.rewrite import BindingContext, strip_qualifiers
from repro.core.schemes import Scheme
from repro.engine.schema import TableSchema
from repro.sql import ast


@dataclass(frozen=True)
class Pair:
    """One candidate encrypted column: the paper's ⟨value, scheme⟩.

    HOM pairs carry a packing ``variant``: ``"row"`` for per-row packing
    (§5.3 grouped addition — works under any GROUP BY) or ``"col"`` for
    columnar multi-row packing (§5.2 — smallest scan footprint).  The
    designer may materialize either or both; the planner picks per query.
    """

    table: str
    expr_sql: str
    scheme: Scheme
    variant: str = ""

    def __repr__(self) -> str:
        tag = f"/{self.variant}" if self.variant else ""
        return f"⟨{self.table}:{self.expr_sql},{self.scheme.value.upper()}{tag}⟩"


@dataclass(frozen=True)
class Unit:
    """An all-or-nothing group of pairs (§6.3)."""

    label: str
    pairs: frozenset[Pair]

    def __repr__(self) -> str:
        return f"Unit({self.label}: {sorted(map(str, self.pairs))})"


class EncSetExtractor:
    def __init__(
        self,
        schemas: dict[str, TableSchema],
        flags: TechniqueFlags = TechniqueFlags(),
    ) -> None:
        self.schemas = schemas
        self.flags = flags

    # -- public ---------------------------------------------------------------

    def extract(self, query: ast.Select) -> list[Unit]:
        try:
            bindings = self._bindings_for(query, parent=None)
        except PlanningError:
            return []
        return self._extract_with(query, bindings)

    # -- internals ----------------------------------------------------------------

    def _extract_with(self, query: ast.Select, bindings: BindingContext) -> list[Unit]:
        units: list[Unit] = []
        seen: set[frozenset[Pair]] = set()

        def add(label: str, pairs: set[Pair] | None) -> None:
            if not pairs:
                return
            key = frozenset(pairs)
            if key in seen:
                return
            seen.add(key)
            units.append(Unit(label, key))

        # FROM subqueries contribute their own units.
        join_conditions: list[ast.Expr] = []
        for ref in _flatten(query.from_items, join_conditions):
            if isinstance(ref, ast.SubqueryRef):
                units.extend(self.extract(ref.query))

        for i, conjunct in enumerate(join_conditions + ast.conjuncts(query.where)):
            add(f"where[{i}]", self._predicate_pairs(conjunct, bindings, units, add))

        group_pairs: set[Pair] = set()
        for key in query.group_by:
            pair_set = self._value_pairs(key, Scheme.DET, bindings)
            if pair_set is None:
                group_pairs = set()
                break
            group_pairs |= pair_set
        add("group_by", group_pairs)

        if query.having is not None:
            for i, conjunct in enumerate(ast.conjuncts(query.having)):
                pairs = self._predicate_pairs(conjunct, bindings, units, add)
                if pairs:
                    add(f"having[{i}]", pairs)
                else:
                    prefilter = self._prefilter_pairs(conjunct, bindings)
                    add(f"prefilter[{i}]", prefilter)

        for item in query.items:
            self._output_units(item.expr, bindings, add)
        for order in query.order_by:
            self._output_units(order.expr, bindings, add)

        if query.order_by and query.limit is not None:
            order_pairs: set[Pair] = set()
            ok = True
            for order in query.order_by:
                expr = order.expr
                if ast.contains_aggregate(expr):
                    ok = False
                    break
                pair_set = self._value_pairs(expr, Scheme.OPE, bindings)
                if pair_set is None:
                    ok = False
                    break
                order_pairs |= pair_set
            if ok:
                add("order_by", order_pairs)
        return units

    # -- predicates ------------------------------------------------------------------

    def _predicate_pairs(
        self, expr: ast.Expr, bindings: BindingContext, units: list[Unit], add
    ) -> set[Pair] | None:
        """Pairs enabling server evaluation of a predicate (None: impossible)."""
        if isinstance(expr, ast.Literal):
            return set()
        if isinstance(expr, ast.BinOp):
            if expr.op in ("and", "or"):
                left = self._predicate_pairs(expr.left, bindings, units, add)
                right = self._predicate_pairs(expr.right, bindings, units, add)
                if left is None or right is None:
                    return None
                return left | right
            if expr.op in ("=", "<>"):
                det = self._comparison_pairs(expr, Scheme.DET, bindings)
                if det is not None:
                    return det
                return self._comparison_pairs(expr, Scheme.OPE, bindings)
            if expr.op in ("<", "<=", ">", ">="):
                return self._comparison_pairs(expr, Scheme.OPE, bindings)
            return None
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            return self._predicate_pairs(expr.operand, bindings, units, add)
        if isinstance(expr, ast.Between):
            out: set[Pair] = set()
            for part in (expr.needle, expr.low, expr.high):
                pairs = self._value_pairs(part, Scheme.OPE, bindings)
                if pairs is None:
                    return None
                out |= pairs
            return out
        if isinstance(expr, ast.InList):
            pairs = self._value_pairs(expr.needle, Scheme.DET, bindings)
            if pairs is None:
                return None
            return pairs
        if isinstance(expr, ast.Like):
            return self._like_pairs(expr, bindings)
        if isinstance(expr, ast.IsNull):
            return set()
        if isinstance(expr, ast.Exists):
            return self._subquery_pairs(expr.query, bindings, item_scheme=None)
        if isinstance(expr, ast.InSubquery):
            needle = self._value_pairs(expr.needle, Scheme.DET, bindings)
            if needle is None:
                return None
            inner = self._subquery_pairs(expr.query, bindings, item_scheme=Scheme.DET)
            if inner is None:
                # Round-trip materialization: the subquery plans separately;
                # its units stand alone, the needle's DET still helps.
                sub_bindings = self._safe_bindings(expr.query)
                if sub_bindings is not None:
                    for unit in self._extract_with(expr.query, sub_bindings):
                        add(f"subq:{unit.label}", set(unit.pairs))
                return needle
            return needle | inner
        return None

    def _comparison_pairs(
        self, expr: ast.BinOp, scheme: Scheme, bindings: BindingContext
    ) -> set[Pair] | None:
        left = self._value_pairs(expr.left, scheme, bindings)
        right = self._value_pairs(expr.right, scheme, bindings)
        if left is None or right is None:
            return None
        return left | right

    def _like_pairs(self, expr: ast.Like, bindings: BindingContext) -> set[Pair] | None:
        from repro.crypto.search import parse_like_pattern

        if not isinstance(expr.needle, ast.Column):
            return None
        if not isinstance(expr.pattern, ast.Literal) or not isinstance(
            expr.pattern.value, str
        ):
            return None
        try:
            parse_like_pattern(expr.pattern.value)
        except Exception:
            return None
        resolved = bindings.resolve_column(expr.needle)
        if resolved is None:
            return None
        _, table = resolved
        return {Pair(table, normalize_expr(ast.Column(expr.needle.name)), Scheme.SEARCH)}

    def _prefilter_pairs(self, conjunct: ast.Expr, bindings: BindingContext) -> set[Pair] | None:
        if not self.flags.prefilter:
            return None
        if not (isinstance(conjunct, ast.BinOp) and conjunct.op in (">", ">=")):
            return None
        left = conjunct.left
        if not (
            isinstance(left, ast.FuncCall) and left.name == "sum" and len(left.args) == 1
        ):
            return None
        return self._value_pairs(left.args[0], Scheme.OPE, bindings)

    # -- values ---------------------------------------------------------------------

    def _value_pairs(
        self, expr: ast.Expr, scheme: Scheme, bindings: BindingContext
    ) -> set[Pair] | None:
        """Pairs making ``expr`` available under ``scheme`` (None: never)."""
        if isinstance(expr, (ast.Literal, ast.Interval)):
            return set()
        if isinstance(expr, ast.Column):
            resolved = bindings.resolve_column(expr)
            if resolved is None:
                return None
            _, table = resolved
            return {Pair(table, normalize_expr(ast.Column(expr.name)), scheme)}
        if isinstance(expr, ast.FuncCall) and expr.name in ("min", "max"):
            if scheme is not Scheme.OPE or len(expr.args) != 1:
                return None
            return self._value_pairs(expr.args[0], Scheme.OPE, bindings)
        if isinstance(expr, ast.FuncCall) and expr.name == "count":
            return set()  # Counts are server-visible (plainval).
        if isinstance(expr, ast.ScalarSubquery):
            return self._subquery_pairs(expr.query, bindings, item_scheme=scheme)
        # Composite expression: precomputation candidate (§5.1).
        if not self.flags.precomputation:
            return None
        if ast.contains_aggregate(expr):
            return None
        table = self._single_table(expr, bindings)
        if table is None:
            return None
        return {Pair(table, normalize_expr(strip_qualifiers(expr)), scheme)}

    def _subquery_pairs(
        self, query: ast.Select, bindings: BindingContext, item_scheme: Scheme | None
    ) -> set[Pair] | None:
        try:
            sub_bindings = self._bindings_for(query, parent=bindings)
        except PlanningError:
            return None
        out: set[Pair] = set()
        for ref in query.from_items:
            if not isinstance(ref, ast.TableName):
                return None
        for conjunct in ast.conjuncts(query.where):
            pairs = self._predicate_pairs(conjunct, sub_bindings, [], lambda *a: None)
            if pairs is None:
                return None
            out |= pairs
        for key in query.group_by:
            pairs = self._value_pairs(key, Scheme.DET, sub_bindings)
            if pairs is None:
                return None
            out |= pairs
        if query.having is not None:
            pairs = self._predicate_pairs(query.having, sub_bindings, [], lambda *a: None)
            if pairs is None:
                return None
            out |= pairs
        if item_scheme is not None:
            if len(query.items) != 1:
                return None
            pairs = self._value_pairs(query.items[0].expr, item_scheme, sub_bindings)
            if pairs is None and item_scheme is Scheme.DET:
                pairs = self._value_pairs(query.items[0].expr, Scheme.OPE, sub_bindings)
            if pairs is None:
                return None
            out |= pairs
        return out

    # -- outputs -----------------------------------------------------------------------

    def _output_units(self, expr: ast.Expr, bindings: BindingContext, add) -> None:
        for call in ast.find_aggregates(expr):
            if call.name == "sum" and len(call.args) == 1 and not call.distinct:
                arg = call.args[0]
                table = self._single_table(arg, bindings)
                if table is not None:
                    text = normalize_expr(strip_qualifiers(arg))
                    add(f"hom:{text}", {Pair(table, text, Scheme.HOM, "row")})
                    if self.flags.columnar_agg:
                        add(f"homcol:{text}", {Pair(table, text, Scheme.HOM, "col")})
                    if not isinstance(arg, ast.Column) and self.flags.precomputation:
                        add(f"precomp:{text}", {Pair(table, text, Scheme.DET)})
            elif call.name in ("min", "max") and len(call.args) == 1:
                pairs = self._value_pairs(call, Scheme.OPE, bindings)
                if pairs:
                    add(f"aggope:{normalize_expr(strip_qualifiers(call))}", pairs)
        # Composite non-aggregate sub-expressions: DET precomputation.
        if self.flags.precomputation:
            for sub in self._composite_scalars(expr):
                table = self._single_table(sub, bindings)
                if table is not None:
                    text = normalize_expr(strip_qualifiers(sub))
                    add(f"precomp:{text}", {Pair(table, text, Scheme.DET)})

    def _composite_scalars(self, expr: ast.Expr) -> list[ast.Expr]:
        """Maximal aggregate-free composite subexpressions (lowest useful
        precomputation points, §5.1)."""
        out: list[ast.Expr] = []

        def visit(node: ast.Expr) -> None:
            if isinstance(node, (ast.Literal, ast.Param, ast.Interval, ast.Column)):
                return
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                return
            if not ast.contains_aggregate(node) and ast.find_columns(node):
                out.append(node)
                return
            for child in node.children():
                visit(child)

        visit(expr)
        return out

    # -- helpers -------------------------------------------------------------------------

    def _single_table(self, expr: ast.Expr, bindings: BindingContext) -> str | None:
        tables = set()
        columns = ast.find_columns(expr)
        if not columns:
            return None
        for column in columns:
            resolved = bindings.resolve_column(column)
            if resolved is None:
                return None
            tables.add(resolved[1])
        if len(tables) == 1:
            return next(iter(tables))
        return None

    def _bindings_for(
        self, query: ast.Select, parent: BindingContext | None
    ) -> BindingContext:
        tables: dict[str, str] = {}
        schemas: dict[str, TableSchema] = {}
        for ref in _flatten(query.from_items, []):
            if isinstance(ref, ast.TableName):
                schema = self.schemas.get(ref.name)
                if schema is None:
                    raise PlanningError(f"unknown table {ref.name!r}")
                tables[ref.binding] = ref.name
                schemas[ref.binding] = schema
        return BindingContext(tables, schemas, parent=parent, registry=self.schemas)

    def _safe_bindings(self, query: ast.Select) -> BindingContext | None:
        try:
            return self._bindings_for(query, parent=None)
        except PlanningError:
            return None


def _flatten(refs, join_conditions: list) -> list[ast.TableRef]:
    out: list[ast.TableRef] = []
    for ref in refs:
        if isinstance(ref, ast.Join):
            if ref.condition is not None:
                join_conditions.extend(ast.conjuncts(ref.condition))
            out.extend(_flatten([ref.left, ref.right], join_conditions))
        else:
            out.append(ref)
    return out
