"""REWRITESERVER: rewrite plaintext expressions to run over ciphertexts.

This is the paper's ``REWRITESERVER(expr, E, enctype)`` (§4): given the set
of encrypted columns ``E`` (our :class:`~repro.core.design.PhysicalDesign`),
produce an expression the untrusted server can evaluate, or ``None`` when
the design does not support it.  Targets:

* ``det``      — the server value is the deterministic encryption of the
  plaintext value (supports ``=``, ``IN``, GROUP BY, joins);
* ``ope``      — the order-preserving encryption (supports ``<``, MIN/MAX);
* ``plainval`` — a value the server computes *in the clear* without seeing
  row plaintext: row counts and arithmetic over them;
* ``any``      — any client-decryptable representation (used for
  projections, Algorithm 1 lines 32–37);
* ``plain``    — a boolean predicate whose truth value the server computes
  (Algorithm 1's ``enctype=PLAIN``), built from the above.

Whole subqueries rewrite recursively (:meth:`ServerRewriter.rewrite_select`),
which is how TPC-H Q2's correlated MIN subquery or Q21's EXISTS chains run
entirely on the server.  Correlated column references resolve through the
same design lookups — the engine's executor handles correlation natively
over encrypted values.
"""

from __future__ import annotations

from repro.common.errors import CryptoError, DomainError, PlanningError
from repro.core.design import PhysicalDesign, normalize_expr
from repro.core.encdata import CryptoProvider
from repro.core.schemes import Scheme
from repro.engine.schema import TableSchema
from repro.sql import ast

_VALUE_SCHEMES = {"det": Scheme.DET, "ope": Scheme.OPE, "rnd": Scheme.RND}


class BindingContext:
    """Maps query bindings (aliases) to real tables and schemas; chains to an
    outer context for correlated subqueries."""

    def __init__(
        self,
        tables: dict[str, str],
        schemas: dict[str, TableSchema],
        parent: "BindingContext | None" = None,
        registry: dict[str, TableSchema] | None = None,
    ) -> None:
        self.tables = tables  # binding -> real table name
        self.schemas = schemas  # binding -> plaintext schema
        self.parent = parent
        # Global table-name -> schema map: lets server-side subqueries
        # reference tables that are not in the outer FROM (TPC-H Q4, Q22).
        self.registry = registry if registry is not None else (
            parent.registry if parent is not None else None
        )

    def resolve_column(self, column: ast.Column) -> tuple[str, str] | None:
        """(binding, real_table) for a column reference, or None."""
        if column.table is not None:
            if column.table in self.tables:
                schema = self.schemas[column.table]
                if schema.has_column(column.name):
                    return column.table, self.tables[column.table]
            if self.parent is not None:
                return self.parent.resolve_column(column)
            return None
        matches = [
            (binding, self.tables[binding])
            for binding, schema in self.schemas.items()
            if schema.has_column(column.name)
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches and self.parent is not None:
            return self.parent.resolve_column(column)
        if len(matches) > 1:
            raise PlanningError(f"ambiguous column {column.name!r}")
        return None

    def child(self, tables: dict[str, str], schemas: dict[str, TableSchema]) -> "BindingContext":
        return BindingContext(tables, schemas, parent=self, registry=self.registry)

    def all_schemas(self) -> dict[str, TableSchema]:
        out = dict(self.schemas)
        ctx = self.parent
        while ctx is not None:
            for k, v in ctx.schemas.items():
                out.setdefault(k, v)
            ctx = ctx.parent
        return out


def strip_qualifiers(expr: ast.Expr) -> ast.Expr:
    """Remove table qualifiers (design entries are table-relative)."""
    return ast.transform(
        expr,
        lambda e: ast.Column(e.name) if isinstance(e, ast.Column) else e,
    )


class ServerRewriter:
    def __init__(
        self,
        design: PhysicalDesign,
        provider: CryptoProvider,
        bindings: BindingContext,
    ) -> None:
        self.design = design
        self.provider = provider
        self.bindings = bindings

    # -- entry points -------------------------------------------------------------

    def rewrite(self, expr: ast.Expr, target: str) -> ast.Expr | None:
        """REWRITESERVER.  ``target`` in {plain, det, ope, plainval, any}."""
        if target == "plain":
            return self.rewrite_predicate(expr)
        if target in ("det", "ope"):
            return self.rewrite_value(expr, target)
        if target == "plainval":
            return self.rewrite_plainval(expr)
        if target == "any":
            return self.rewrite_any(expr)
        raise PlanningError(f"unknown rewrite target {target!r}")

    def rewrite_any(self, expr: ast.Expr) -> tuple[ast.Expr, str] | None:
        """Best decryptable representation; returns (expr', kind)."""
        for kind in ("det", "rnd", "ope"):
            rewritten = self.rewrite_value(expr, kind)
            if rewritten is not None:
                return rewritten, kind
        plain = self.rewrite_plainval(expr)
        if plain is not None:
            return plain, "plain"
        return None

    # -- value rewrites -------------------------------------------------------------

    def rewrite_value(self, expr: ast.Expr, kind: str) -> ast.Expr | None:
        scheme = _VALUE_SCHEMES[kind]
        if isinstance(expr, ast.Literal):
            if kind == "rnd":
                return None  # Literals never need RND on the server.
            return self._encrypt_literal(expr.value, kind)
        if isinstance(expr, ast.Column):
            return self._column_ref(expr, scheme)
        if isinstance(expr, ast.FuncCall) and expr.name in ("min", "max"):
            if kind != "ope" or len(expr.args) != 1:
                return None
            arg = self.rewrite_value(expr.args[0], "ope")
            if arg is None:
                return None
            return ast.FuncCall(expr.name, (arg,))
        if isinstance(expr, ast.ScalarSubquery):
            rewritten = self.rewrite_select(expr.query, item_target=kind)
            if rewritten is None:
                return None
            return ast.ScalarSubquery(rewritten)
        # Whole-expression (precomputed) lookup, §5.1.
        if kind in ("det", "ope"):
            ref = self._precomputed_ref(expr, scheme)
            if ref is not None:
                return ref
        return None

    def rewrite_plainval(self, expr: ast.Expr) -> ast.Expr | None:
        if isinstance(expr, ast.Literal):
            if isinstance(expr.value, (int, float)) and not isinstance(expr.value, bool):
                return expr
            return None
        if isinstance(expr, ast.FuncCall) and expr.name == "count":
            if expr.star:
                return expr
            if len(expr.args) == 1:
                arg = self.rewrite_any(expr.args[0])
                if arg is None:
                    return None
                return ast.FuncCall("count", (arg[0],), distinct=expr.distinct)
            return None
        if isinstance(expr, ast.BinOp) and expr.op in ("+", "-", "*", "/"):
            left = self.rewrite_plainval(expr.left)
            right = self.rewrite_plainval(expr.right)
            if left is None or right is None:
                return None
            return ast.BinOp(expr.op, left, right)
        if isinstance(expr, ast.ScalarSubquery):
            rewritten = self.rewrite_select(expr.query, item_target="plainval")
            if rewritten is None:
                return None
            return ast.ScalarSubquery(rewritten)
        return None

    # -- predicate rewrites ------------------------------------------------------------

    def rewrite_predicate(self, expr: ast.Expr) -> ast.Expr | None:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, bool):
            return expr
        if isinstance(expr, ast.BinOp):
            if expr.op in ("and", "or"):
                left = self.rewrite_predicate(expr.left)
                right = self.rewrite_predicate(expr.right)
                if left is None or right is None:
                    return None
                return ast.BinOp(expr.op, left, right)
            if expr.op in ("=", "<>"):
                return self._rewrite_comparison(expr, ("det", "ope", "plainval"))
            if expr.op in ("<", "<=", ">", ">="):
                return self._rewrite_comparison(expr, ("ope", "plainval"))
            return None
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            inner = self.rewrite_predicate(expr.operand)
            if inner is None:
                return None
            return ast.UnaryOp("not", inner)
        if isinstance(expr, ast.Between):
            for kind in ("ope", "plainval"):
                needle = self.rewrite_value(expr.needle, kind) if kind != "plainval" else self.rewrite_plainval(expr.needle)
                low = self.rewrite_value(expr.low, kind) if kind != "plainval" else self.rewrite_plainval(expr.low)
                high = self.rewrite_value(expr.high, kind) if kind != "plainval" else self.rewrite_plainval(expr.high)
                if needle is not None and low is not None and high is not None:
                    return ast.Between(needle, low, high, expr.negated)
            return None
        if isinstance(expr, ast.InList):
            for kind in ("det", "ope"):
                needle = self.rewrite_value(expr.needle, kind)
                if needle is None:
                    continue
                items = [self.rewrite_value(i, kind) for i in expr.items]
                if all(i is not None for i in items):
                    return ast.InList(needle, tuple(items), expr.negated)
            return None
        if isinstance(expr, ast.Like):
            return self._rewrite_like(expr)
        if isinstance(expr, ast.IsNull):
            operand = self.rewrite_any(expr.operand)
            if operand is None:
                return None
            return ast.IsNull(operand[0], expr.negated)
        if isinstance(expr, ast.Exists):
            rewritten = self.rewrite_select(expr.query, item_target="exists")
            if rewritten is None:
                return None
            return ast.Exists(rewritten, expr.negated)
        if isinstance(expr, ast.InSubquery):
            needle = self.rewrite_value(expr.needle, "det")
            if needle is None:
                return None
            rewritten = self.rewrite_select(expr.query, item_target="det")
            if rewritten is None:
                return None
            return ast.InSubquery(needle, rewritten, expr.negated)
        return None

    def _rewrite_comparison(self, expr: ast.BinOp, kinds: tuple[str, ...]) -> ast.Expr | None:
        for kind in kinds:
            if kind == "plainval":
                left = self.rewrite_plainval(expr.left)
                right = self.rewrite_plainval(expr.right)
            else:
                left = self.rewrite_value(expr.left, kind)
                right = self.rewrite_value(expr.right, kind)
            if left is not None and right is not None:
                return ast.BinOp(expr.op, left, right)
        return None

    def _rewrite_like(self, expr: ast.Like) -> ast.Expr | None:
        if not isinstance(expr.needle, ast.Column):
            return None
        if not isinstance(expr.pattern, ast.Literal) or not isinstance(
            expr.pattern.value, str
        ):
            return None
        resolved = self.bindings.resolve_column(expr.needle)
        if resolved is None:
            return None
        binding, table = resolved
        if not self.design.has(table, ast.Column(expr.needle.name), Scheme.SEARCH):
            return None
        try:
            trapdoor = self.provider.search_trapdoor(expr.pattern.value)
        except CryptoError:
            return None  # Multi-pattern LIKE: not supported (paper §7).
        from repro.core.design import enc_column_name

        column = ast.Column(
            enc_column_name(normalize_expr(ast.Column(expr.needle.name)), Scheme.SEARCH),
            table=binding if expr.needle.table else None,
        )
        return ast.Like(column, ast.Literal(trapdoor), expr.negated)

    # -- whole-subquery rewrites -----------------------------------------------------

    def rewrite_select(self, query: ast.Select, item_target: str) -> ast.Select | None:
        """Rewrite an entire subquery to run on the server.

        ``item_target`` controls the select list: ``exists`` (items don't
        matter), ``det`` / ``ope`` (IN / scalar comparisons), or
        ``plainval``.
        """
        sub_tables: dict[str, str] = {}
        sub_schemas: dict[str, TableSchema] = {}
        for ref in query.from_items:
            if isinstance(ref, ast.TableName):
                real = ref.name
                schema = self._schema_for_table(real)
                if schema is None:
                    return None
                sub_tables[ref.binding] = real
                sub_schemas[ref.binding] = schema
            else:
                return None  # Joins/subqueries in server subqueries: bail out.
        child = ServerRewriter(
            self.design, self.provider, self.bindings.child(sub_tables, sub_schemas)
        )
        where = None
        if query.where is not None:
            where = child.rewrite_predicate(query.where)
            if where is None:
                return None
        group_by: list[ast.Expr] = []
        for key in query.group_by:
            rewritten = child.rewrite_value(key, "det")
            if rewritten is None:
                return None
            group_by.append(rewritten)
        having = None
        if query.having is not None:
            having = child.rewrite_predicate(query.having)
            if having is None:
                return None
        if item_target == "exists":
            items = (ast.SelectItem(ast.Literal(1)),)
        else:
            if len(query.items) != 1:
                return None
            if item_target == "plainval":
                item = child.rewrite_plainval(query.items[0].expr)
            else:
                item = child.rewrite_value(query.items[0].expr, item_target)
            if item is None:
                return None
            items = (ast.SelectItem(item),)
        if query.order_by and query.limit is not None:
            return None  # ORDER BY + LIMIT subqueries need exact order; bail.
        return ast.Select(
            items=items,
            from_items=query.from_items,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=(),
            limit=query.limit,
            distinct=query.distinct,
        )

    # -- helpers -------------------------------------------------------------------

    def _schema_for_table(self, table: str) -> TableSchema | None:
        for binding, name in self.bindings.tables.items():
            if name == table:
                return self.bindings.schemas[binding]
        ctx = self.bindings.parent
        while ctx is not None:
            for binding, name in ctx.tables.items():
                if name == table:
                    return ctx.schemas[binding]
            ctx = ctx.parent
        registry = self.bindings.registry
        if registry is not None and table in registry:
            return registry[table]
        return None

    def _encrypt_literal(self, value: object, kind: str) -> ast.Expr | None:
        if isinstance(value, ast.Interval):
            return None
        try:
            encrypted = self.provider.encrypt(value, kind)
        except (DomainError, CryptoError):
            return None
        return ast.Literal(encrypted)

    def _column_ref(self, column: ast.Column, scheme: Scheme) -> ast.Expr | None:
        resolved = self.bindings.resolve_column(column)
        if resolved is None:
            return None
        binding, table = resolved
        if not self.design.has(table, ast.Column(column.name), scheme):
            return None
        from repro.core.design import enc_column_name

        name = enc_column_name(normalize_expr(ast.Column(column.name)), scheme)
        qualifier = binding if column.table is not None else None
        return ast.Column(name, table=qualifier)

    def _precomputed_ref(self, expr: ast.Expr, scheme: Scheme) -> ast.Expr | None:
        columns = ast.find_columns(expr)
        if not columns:
            return None
        resolutions = set()
        for column in columns:
            resolved = self.bindings.resolve_column(column)
            if resolved is None:
                return None
            resolutions.add(resolved)
        if len(resolutions) != 1:
            return None  # Precomputation is per-row within one table (§5.1).
        binding, table = next(iter(resolutions))
        text = normalize_expr(strip_qualifiers(expr))
        if not self.design.has(table, text, scheme):
            return None
        from repro.core.design import enc_column_name

        had_qualifier = any(c.table is not None for c in columns)
        qualifier = binding if had_qualifier else None
        return ast.Column(enc_column_name(text, scheme), table=qualifier)
