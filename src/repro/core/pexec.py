"""Split-plan execution: the MONOMI client library's runtime half.

Runs a :class:`~repro.core.plan.SplitPlan` against the untrusted server:

1. execute subplans (their results bind as DET-encrypted server-side IN
   sets or plaintext residual parameters — the multi-round-trip plans);
2. for each RemoteRelation: run the encrypted query on the server
   (charging measured server CPU + modeled disk time for bytes scanned),
   charge modeled network time for the intermediate result's exact bytes,
   then decrypt every output column on the client per its DecryptSpec
   (charging measured client CPU), unnesting grp() lists when the plan
   says so;
3. run the residual query over the decrypted virtual tables with the same
   relational engine, on the trusted side.

Two execution modes share this machinery:

* :meth:`PlanExecutor.execute` — materialize everything, return one
  :class:`ResultSet` (the drain-everything wrapper);
* :meth:`PlanExecutor.execute_iter` — stream
  :class:`~repro.engine.rowblock.RowBlock` batches end-to-end.  When the
  plan is one RemoteRelation whose residual is stream-shaped (scan →
  filter → project → limit over that relation, no subqueries), blocks
  flow server scan → per-block decrypt (through the ``*_decrypt_batch``
  APIs) → per-block unnest → residual operators without ever staging a
  full table; peak client memory is O(block).  Any other plan shape runs
  the materializing path and re-blocks its result (one blocking operator
  at the root).  Both modes return identical rows and identical ledger
  byte counts — the streaming equivalence tests assert this.

Multicore pipeline
------------------
Two knobs overlap the split plan's halves across cores:

* ``partitions`` (default from ``MONOMI_PARTITIONS``) asks the server
  backend for a partition-parallel scan whenever the server query is
  itself streamable; blocking server queries run unpartitioned on the
  native backends, and raise
  :class:`~repro.common.errors.ConfigError` on backends without native
  streaming rather than silently changing mode.
* ``prefetch_blocks`` (default from ``MONOMI_PREFETCH``, 2) runs server
  block production on a producer thread feeding a bounded queue, so the
  server scans block *k+1* while the client decrypts block *k* — the
  two sides pipeline instead of alternating.  The ledger is only ever
  mutated from the consuming side (the producer reports its measured
  seconds alongside each block), so byte counts and row order stay
  byte-identical to the unprefetched stream.

Resilient execution
-------------------
Server calls cross the failure boundary, so both execution paths retry
:class:`~repro.common.errors.TransientError` under the executor's
:class:`~repro.common.retry.RetryPolicy`.  The materializing path simply
re-runs ``backend.execute``; the streaming path resumes through
:class:`_ResilientStream`, which re-opens the (deterministic) server
stream and fast-forwards past the rows it already delivered — so
delivered rows are never repeated and never lost.  The invariant, pinned
by the fault tests: under *any* fault schedule the primary ledger totals
(transfer bytes, scan bytes, round trips) are byte-identical to a
fault-free run; retried and abandoned work accrues separately in
``ledger.retries`` / ``ledger.retry_bytes``.  A
:class:`~repro.common.retry.Deadline` passed to :meth:`execute` /
:meth:`execute_iter` is checked at every block boundary (and inside the
prefetch producer), turning runaway queries into a typed
:class:`~repro.common.errors.DeadlineExceededError` with all worker
threads shut down cleanly.

The returned :class:`~repro.common.ledger.CostLedger` carries the paper's
three cost components (§6.4) for every benchmark to aggregate.
"""

from __future__ import annotations

import os
import queue as queue_mod
import random
import threading
import time
from typing import Callable, Iterator

from repro.common.errors import (
    ConfigError,
    DeadlineExceededError,
    ExecutionError,
    TransientError,
)
from repro.common.ledger import CostLedger, DiskModel, NetworkModel
from repro.common.parallel import PARTITIONS_ENV, queue_put_bounded, resolve_workers
from repro.common.retry import Deadline, RetryPolicy, retry_call
from repro.core.encdata import CryptoProvider
from repro.core.plan import ClientRelation, DecryptSpec, RemoteRelation, SplitPlan
from repro.engine.aggregates import HomAggResult
from repro.engine.catalog import Database
from repro.engine.executor import Executor, ResultSet, is_streamable
from repro.engine.rowblock import (
    DEFAULT_BLOCK_ROWS,
    BlockStream,
    RowBlock,
    blocks_from_rows,
    result_header_bytes,
)
from repro.engine.schema import ColumnDef, TableSchema
from repro.server.backend import (
    ServerBackend,
    as_backend,
    supports_deadline,
    supports_partitions,
)
from repro.sql import ast

PREFETCH_ENV = "MONOMI_PREFETCH"
DEFAULT_PREFETCH_BLOCKS = 2


def _resolve_prefetch(prefetch_blocks: int | None) -> int:
    """Queue depth for the server→client pipeline; 0 disables it."""
    if prefetch_blocks is None:
        raw = os.environ.get(PREFETCH_ENV)
        if raw is None:
            return DEFAULT_PREFETCH_BLOCKS
        try:
            prefetch_blocks = int(raw)
        except ValueError:
            raise ConfigError(
                f"{PREFETCH_ENV} must be an integer, got {raw!r}"
            ) from None
    if prefetch_blocks < 0:
        raise ConfigError(
            f"prefetch_blocks must be >= 0, got {prefetch_blocks}"
        )
    return prefetch_blocks

_TYPE_MAP = {
    "int": "int",
    "float": "float",
    "text": "text",
    "date": "date",
    "bool": "bool",
}


class PlanStream:
    """A streaming query result: RowBlocks plus the live cost ledger.

    The ledger accumulates as blocks are pulled; its totals are final
    only once the stream is exhausted (or closed).  Single-shot.
    """

    def __init__(
        self, columns: list[str], blocks: Iterator[RowBlock], ledger: CostLedger
    ) -> None:
        self.columns = columns
        self.ledger = ledger
        self._stream = BlockStream(columns, blocks)

    def __iter__(self) -> Iterator[RowBlock]:
        return iter(self._stream)

    def close(self) -> None:
        self._stream.close()

    def drain(self) -> ResultSet:
        return ResultSet(self.columns, self._stream.drain_rows())


#: How long the consumer waits for the prefetch producer (or the producer
#: for an abandoned stream) before giving up the join — a stuck backend
#: must not hang the client indefinitely.  The thread is a daemon either
#: way; the bound only limits how long close() blocks.
_PRODUCER_JOIN_SECONDS = 10.0


def _deadline_checked(
    blocks: Iterator[RowBlock], deadline: Deadline
) -> Iterator[RowBlock]:
    """Re-yield ``blocks``, raising once ``deadline`` passes."""
    for block in blocks:
        deadline.check("query stream")
        yield block


class _ResilientStream:
    """A re-openable view of one deterministic server block stream.

    Duck-types :class:`~repro.engine.rowblock.BlockStream` (``columns``,
    ``stats``, iteration, ``close``) so the prefetch/sequential plumbing
    is oblivious to faults.  When a pull raises a
    :class:`~repro.common.errors.TransientError`, the abandoned attempt
    is accounted (its scan bytes plus one result header go to the
    stream's ``retry_bytes``), the stream re-opens through the same
    factory, and iteration **fast-forwards** past the ``delivered`` rows
    the consumer already holds — re-pulled-and-skipped row payloads also
    go to ``retry_bytes``.  Server scans are deterministic (same query,
    same snapshot, same order), and block payload bytes are
    block-boundary-independent, so the blocks the consumer sees — and
    every primary ledger charge made from them — are byte-identical to a
    fault-free run.

    The retry budget counts *faults without progress*: any attempt that
    delivers at least one new row resets it, so a long stream under a
    constant fault rate still completes — permanent failure needs
    ``max_attempts`` consecutive faults with zero rows in between.

    Counters (``retries``, ``retry_bytes``) are folded into the ledger by
    the consuming side once iteration ends; this class never touches the
    ledger itself (the prefetch producer iterates it from another
    thread).
    """

    def __init__(
        self,
        open_stream: Callable[[], BlockStream],
        policy: RetryPolicy,
        deadline: Deadline | None,
        rng: random.Random,
    ) -> None:
        self._open_stream = open_stream
        self._policy = policy
        self._deadline = deadline
        self._rng = rng
        self._stream: BlockStream | None = None
        self._gen: Iterator[RowBlock] | None = None
        self.columns: list[str] = []
        self.delivered = 0
        self.retries = 0
        self.retry_bytes = 0

    @property
    def stats(self):
        """The *final* attempt's stats (abandoned attempts went to
        ``retry_bytes``); scan accounting is static, so this matches the
        fault-free charge exactly."""
        return self._stream.stats if self._stream is not None else None

    def open(self) -> None:
        """Open the initial stream, retrying transient open failures.

        Failed opens charge no retry bytes: the server produced nothing
        (pre-call faults and statement errors happen before any scan
        output exists)."""

        def note(attempt: int, exc: BaseException) -> None:
            self.retries += 1

        self._stream = retry_call(
            self._open_stream,
            self._policy,
            deadline=self._deadline,
            rng=self._rng,
            on_retry=note,
        )
        self.columns = list(self._stream.columns)

    def __iter__(self) -> Iterator[RowBlock]:
        if self._gen is None:
            self._gen = self._blocks()
        return self._gen

    def close(self) -> None:
        if self._gen is not None:
            self._gen.close()
        elif self._stream is not None:
            self._stream.close()

    # -- internals -----------------------------------------------------------

    def _abandon(self) -> None:
        """Account and drop the current attempt after a mid-stream fault."""
        stream = self._stream
        if stream is None:
            return
        stream.close()
        stats = stream.stats
        if stats is not None:
            self.retry_bytes += stats.bytes_scanned
        self.retry_bytes += result_header_bytes(stream.columns)
        self._stream = None

    def _backoff(self, faults: int, cause: BaseException) -> None:
        pause = self._policy.delay(faults, self._rng)
        if self._deadline is not None:
            remaining = self._deadline.remaining()
            if remaining <= 0:
                raise DeadlineExceededError(
                    "deadline expired while resuming an interrupted stream"
                ) from cause
            pause = min(pause, remaining)
        if pause > 0:
            time.sleep(pause)

    def _blocks(self) -> Iterator[RowBlock]:
        faults = 0  # Consecutive faults with zero blocks received in between.
        skip = 0  # Rows to fast-forward past on the current attempt.
        try:
            while True:
                # Any block received this attempt counts as progress — a
                # resume replays every delivered row through fresh fault
                # draws, so judging progress by *new* rows would compound
                # the failure probability with stream depth.  A block
                # means the server is alive; the budget guards against a
                # dead one (max_attempts faults with nothing received,
                # probability rate**max_attempts per point).
                received = 0
                try:
                    if self._stream is None:
                        # Re-opens get the same retry budget as the
                        # initial open: a pre-call fault on the reopen
                        # request must not burn a stream-resume attempt.
                        self.open()
                    for block in self._stream:
                        received += 1
                        if self._deadline is not None:
                            self._deadline.check("query stream")
                        if skip >= len(block) > 0:
                            skip -= len(block)
                            self.retry_bytes += block.payload_bytes()
                            continue
                        if skip:
                            dropped = RowBlock(
                                [c[:skip] for c in block.columns], skip
                            )
                            self.retry_bytes += dropped.payload_bytes()
                            block = RowBlock(
                                [c[skip:] for c in block.columns],
                                len(block) - skip,
                            )
                            skip = 0
                        self.delivered += len(block)
                        yield block
                    return
                except TransientError as exc:
                    self._abandon()
                    if received > 0:
                        faults = 1  # Progress was made: budget resets.
                    else:
                        faults += 1
                    if faults >= self._policy.max_attempts:
                        raise
                    self.retries += 1
                    self._backoff(faults, exc)
                    skip = self.delivered
        finally:
            if self._stream is not None:
                self._stream.close()


class PlanExecutor:
    """Executes split plans for one (server backend, key chain) pair.

    ``streaming`` selects the default mode of :meth:`execute`; either way
    :meth:`execute_iter` is available (with ``streaming=False`` it always
    routes through the materializing path, which makes the two modes
    directly comparable in tests and benchmarks).
    """

    def __init__(
        self,
        server: Database | ServerBackend,
        provider: CryptoProvider,
        network: NetworkModel | None = None,
        disk: DiskModel | None = None,
        streaming: bool = True,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        partitions: int | None = None,
        prefetch_blocks: int | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.backend = as_backend(server)
        self.provider = provider
        self.network = network or NetworkModel()
        self.disk = disk or DiskModel()
        self.streaming = streaming
        self.block_rows = block_rows
        self.partitions = resolve_workers(partitions, env_name=PARTITIONS_ENV)
        self.prefetch_blocks = _resolve_prefetch(prefetch_blocks)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        # Backoff jitter draws from a fixed-seed RNG so a given fault
        # schedule replays with identical retry timing (and never
        # perturbs any other randomness in the process).
        self._retry_rng = random.Random(0x5EED)
        if not streaming and self.partitions > 1:
            if partitions is not None:
                # An explicit contradiction fails loudly: the caller asked
                # for partition-parallel scans AND the materializing mode.
                raise ConfigError(
                    f"partition-parallel scans (partitions={partitions}) "
                    "require streaming execution; streaming=False (or "
                    "MONOMI_STREAMING=0) contradicts the request — drop "
                    "one of the two settings"
                )
            # MONOMI_PARTITIONS expresses a preference for the streaming
            # path; a deliberately materializing executor has no scan to
            # partition, so the env default simply does not apply here.
            self.partitions = 1

    # -- public ---------------------------------------------------------------

    def clone_with_backend(self, backend: ServerBackend) -> "PlanExecutor":
        """An executor with identical settings over a different backend.

        The service layer builds one executor per worker thread, each
        bound to that worker's backend view: provider, network/disk
        models, and streaming mode carry over, while per-query server
        state stays worker-private.  Partition-parallel scans are not
        carried over — the service's parallelism axis is concurrent
        queries, and stacking per-query partition fan-out on top of a
        loaded worker pool oversubscribes the cores it is trying to use.
        """
        return PlanExecutor(
            backend,
            self.provider,
            self.network,
            self.disk,
            streaming=self.streaming,
            block_rows=self.block_rows,
            partitions=1,
            prefetch_blocks=self.prefetch_blocks,
            retry_policy=self.retry_policy,
        )

    def execute(
        self, plan: SplitPlan, deadline: Deadline | None = None
    ) -> tuple[ResultSet, CostLedger]:
        if self.streaming:
            stream = self.execute_iter(plan, deadline=deadline)
            return stream.drain(), stream.ledger
        ledger = CostLedger()
        result = self._run(plan, ledger, deadline)
        return result, ledger

    def execute_iter(
        self,
        plan: SplitPlan,
        block_rows: int | None = None,
        deadline: Deadline | None = None,
    ) -> PlanStream:
        """Stream the plan's result as decrypted RowBlocks."""
        if block_rows is None:
            block_rows = self.block_rows
        ledger = CostLedger()
        if self.streaming and self._plan_streams(plan):
            relation = plan.relations[0]
            out_names = [n for spec in relation.specs for n in spec.output_names]
            if plan.residual is None:
                columns = list(out_names)
            else:
                columns = [
                    item.output_name(i)
                    for i, item in enumerate(plan.residual.items)
                ]
            blocks = self._stream_plan(
                plan, relation, out_names, ledger, block_rows, deadline
            )
            return PlanStream(columns, blocks, ledger)
        result = self._run(plan, ledger, deadline)
        blocks = blocks_from_rows(result.rows, len(result.columns), block_rows)
        if deadline is not None:
            # Materialized fallback: blocks come from memory, but the
            # timeout contract covers the stream's whole lifetime — a
            # slow consumer still times out at block granularity.
            blocks = _deadline_checked(blocks, deadline)
        return PlanStream(list(result.columns), blocks, ledger)

    # -- streaming path ------------------------------------------------------

    def _plan_streams(self, plan: SplitPlan) -> bool:
        """Can this plan flow block-at-a-time without staging a table?

        One RemoteRelation (subplans are fine — they run in their own
        round trips first), and a residual that is either absent or a
        stream-shaped query over exactly that relation.  Residual
        subqueries would re-read the staged virtual table, which the
        streaming path never builds, so they force materialization.
        """
        if len(plan.relations) != 1:
            return False
        relation = plan.relations[0]
        if not isinstance(relation, RemoteRelation):
            return False
        residual = plan.residual
        if residual is None:
            return True
        if not is_streamable(residual):
            return False
        if residual.from_items[0].name != relation.alias:
            return False
        if residual.limit is not None:
            # A client-side LIMIT stops pulling the remote stream early,
            # transferring fewer bytes than the materializing reference —
            # a real saving, but it would break the byte-identical ledger
            # contract between the two modes, so LIMIT residuals block.
            # (A LIMIT *pushed into the server query* still streams: the
            # server truncates before transfer on both paths.)
            return False
        exprs = [item.expr for item in residual.items]
        if residual.where is not None:
            exprs.append(residual.where)
        return not any(ast.find_subqueries(e) for e in exprs)

    def _stream_plan(
        self,
        plan: SplitPlan,
        relation: RemoteRelation,
        out_names: list[str],
        ledger: CostLedger,
        block_rows: int,
        deadline: Deadline | None,
    ) -> Iterator[RowBlock]:
        server_params, residual_params = self._bind_subplans(plan, ledger, deadline)
        source = self._stream_remote(
            relation, out_names, server_params, ledger, block_rows, deadline
        )
        if plan.residual is None:
            yield from source
            return
        # Residual operators pull decrypted blocks straight off the remote
        # stream (no staging table).  Engine time inside next() includes
        # the nested server fetch + decrypt, which the source already
        # booked on the ledger — charge only the remainder to client CPU.
        executor = Executor(Database("client_tmp"))
        residual_stream = executor.execute_stream(
            plan.residual,
            params=residual_params,
            sources={relation.alias: BlockStream(out_names, source)},
            block_rows=block_rows,
        )
        blocks = iter(residual_stream)
        try:
            while True:
                booked_before = ledger.server_seconds + ledger.client_seconds
                start = time.perf_counter()
                try:
                    block = next(blocks)
                except StopIteration:
                    block = None
                elapsed = time.perf_counter() - start
                nested = (
                    ledger.server_seconds + ledger.client_seconds - booked_before
                )
                ledger.client_seconds += max(0.0, elapsed - nested)
                if block is None:
                    return
                yield block
        finally:
            residual_stream.close()

    def _stream_remote(
        self,
        relation: RemoteRelation,
        out_names: list[str],
        server_params: dict[str, object],
        ledger: CostLedger,
        block_rows: int,
        deadline: Deadline | None,
    ) -> Iterator[RowBlock]:
        """Server scan → network → per-block decrypt → per-block unnest."""
        specs = relation.specs
        partitions = self.partitions
        if partitions > 1 and not supports_partitions(self.backend):
            # An override written against the pre-partition contract:
            # run it unpartitioned rather than pass an unknown kwarg.
            partitions = 1
        # Blocking server queries need no pre-check here: the native
        # backends fall back to their serial streaming path internally,
        # and a backend without native streaming raises ConfigError from
        # the base execute_stream — the policy lives in one place.

        # Deadline-capable backends (the network client) enforce expiry
        # inside the request itself — pass it through when supported.
        stream_kwargs: dict[str, object] = {}
        if deadline is not None and supports_deadline(self.backend):
            stream_kwargs["deadline"] = deadline

        def open_stream() -> BlockStream:
            if partitions > 1:
                return self.backend.execute_stream(
                    relation.query,
                    params=server_params,
                    block_rows=block_rows,
                    partitions=partitions,
                    **stream_kwargs,
                )
            # Third-party backends may predate the partitions kwarg.
            return self.backend.execute_stream(
                relation.query,
                params=server_params,
                block_rows=block_rows,
                **stream_kwargs,
            )

        stream = _ResilientStream(
            open_stream, self.retry_policy, deadline, self._retry_rng
        )
        with ledger.timing_server():
            stream.open()
        if len(specs) != len(stream.columns):
            raise ExecutionError(
                f"decrypt spec count {len(specs)} != result columns "
                f"{len(stream.columns)}"
            )
        ledger.begin_round_trip(self.network)
        ledger.add_block_transfer(
            result_header_bytes(stream.columns), self.network
        )
        if self.prefetch_blocks > 0:
            produced = self._prefetched_blocks(stream, ledger, deadline)
        else:
            produced = self._sequential_blocks(stream, ledger)
        try:
            for block in produced:
                if deadline is not None:
                    # Consumer-side check: with prefetch, the producer may
                    # have queued every block before expiry — a slow
                    # consumer must still time out at block granularity.
                    deadline.check("query stream")
                ledger.add_block_transfer(block.payload_bytes(), self.network)
                with ledger.timing_client():
                    out = RowBlock(
                        self._decrypt_columns(specs, block.columns), len(block)
                    )
                    if relation.unnest:
                        rows = _unnest_rows(out_names, out.rows(), specs)
                        out = RowBlock.from_rows(rows, len(out_names))
                yield out
        finally:
            # Runs on exhaustion AND on early termination (residual LIMIT):
            # scan accounting is static, so the full footprint is charged
            # either way — identical to the materializing path.  The
            # close joins the producer, so the resilient stream's retry
            # counters are stable when the consumer folds them in here —
            # the ledger is only ever touched from the consuming side.
            produced.close()
            ledger.retries += stream.retries
            ledger.retry_bytes += stream.retry_bytes
            stats = stream.stats
            scanned = stats.bytes_scanned if stats is not None else 0
            ledger.server_bytes_scanned += scanned
            ledger.server_seconds += self.disk.read_seconds(scanned)

    def _sequential_blocks(
        self, stream: "_ResilientStream", ledger: CostLedger
    ) -> Iterator[RowBlock]:
        """Alternating mode: pull each server block inline, then decrypt."""
        blocks = iter(stream)
        try:
            while True:
                with ledger.timing_server():
                    block = next(blocks, None)
                if block is None:
                    return
                yield block
        finally:
            stream.close()

    def _prefetched_blocks(
        self,
        stream: "_ResilientStream",
        ledger: CostLedger,
        deadline: Deadline | None = None,
    ) -> Iterator[RowBlock]:
        """Pipelined mode: a producer thread pulls server blocks into a
        bounded queue while the consumer decrypts.

        The producer never touches the ledger — it measures the seconds
        each ``next()`` took and ships them alongside the block, and the
        consumer folds them in.  Ledger byte counts are therefore
        identical to :meth:`_sequential_blocks`; only wall-clock overlap
        differs.  The queue bound keeps peak memory at
        O(prefetch x block) when the server outruns the client.

        The producer owns the stream: only it iterates the underlying
        generator, and its ``finally`` closes it (finalizing scan stats)
        — so an early consumer exit never calls ``close()`` on a
        generator that is mid-execution in another thread.  The consumer
        joins the producer before reading the stream's stats; the join is
        bounded by one block's production, since a stopped producer gives
        up its pending queue put and exits.
        """
        out: queue_mod.Queue = queue_mod.Queue(maxsize=self.prefetch_blocks)
        stop = threading.Event()

        def produce() -> None:
            try:
                blocks = iter(stream)
                while not stop.is_set():
                    if deadline is not None and deadline.expired:
                        # Deliver the expiry in-band: the consumer is
                        # blocked on the queue and must be woken to raise
                        # the typed error (returning silently would
                        # strand it).
                        queue_put_bounded(
                            out,
                            (
                                "error",
                                DeadlineExceededError(
                                    "query exceeded its deadline while "
                                    "prefetching server blocks"
                                ),
                                0.0,
                            ),
                            stop,
                        )
                        return
                    start = time.perf_counter()
                    try:
                        block = next(blocks, None)
                    except Exception as exc:  # Deliver engine errors in-band.
                        queue_put_bounded(out, ("error", exc, 0.0), stop)
                        return
                    elapsed = time.perf_counter() - start
                    if block is None:
                        queue_put_bounded(out, ("done", None, elapsed), stop)
                        return
                    if not queue_put_bounded(out, ("block", block, elapsed), stop):
                        return
            finally:
                stream.close()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        try:
            while True:
                kind, payload, elapsed = out.get()
                ledger.server_seconds += elapsed
                if kind == "done":
                    return
                if kind == "error":
                    raise payload
                yield payload
        finally:
            stop.set()
            while True:
                try:
                    out.get_nowait()
                except queue_mod.Empty:
                    break
            # Bounded: a producer stuck inside a wedged backend call must
            # not wedge the consumer's close() too (the thread is a
            # daemon; giving up the join leaks no process resources the
            # interpreter cannot reclaim at exit).
            producer.join(timeout=_PRODUCER_JOIN_SECONDS)

    # -- internals ----------------------------------------------------------------

    def _bind_subplans(
        self,
        plan: SplitPlan,
        ledger: CostLedger,
        deadline: Deadline | None = None,
    ) -> tuple[dict[str, object], dict[str, object]]:
        """Run subplans (their own round trips); bind their results."""
        server_params: dict[str, object] = {}
        residual_params: dict[str, object] = {}
        for subplan in plan.subplans:
            sub_result = self._run(subplan.plan, ledger, deadline)
            values = [row[0] for row in sub_result.rows]
            if subplan.mode == "in_set_server":
                with ledger.timing_client():
                    encrypted = frozenset(
                        self.provider.det_encrypt_batch(
                            [v for v in values if v is not None]
                        )
                    )
                server_params[subplan.param_name] = encrypted
            elif subplan.mode == "scalar_residual":
                if len(values) > 1:
                    raise ExecutionError("scalar subplan returned multiple rows")
                residual_params[subplan.param_name] = values[0] if values else None
            elif subplan.mode == "set_residual":
                residual_params[subplan.param_name] = frozenset(
                    v for v in values if v is not None
                )
            else:
                raise ExecutionError(f"unknown subplan mode {subplan.mode!r}")
        return server_params, residual_params

    def _run(
        self,
        plan: SplitPlan,
        ledger: CostLedger,
        deadline: Deadline | None = None,
    ) -> ResultSet:
        server_params, residual_params = self._bind_subplans(plan, ledger, deadline)

        client_db = Database("client_tmp")
        for relation in plan.relations:
            if deadline is not None:
                deadline.check()
            if isinstance(relation, RemoteRelation):
                columns, rows = self._materialize_remote(
                    relation, server_params, ledger, deadline
                )
            elif isinstance(relation, ClientRelation):
                inner = self._run(relation.plan, ledger, deadline)
                columns, rows = list(inner.columns), inner.rows
            else:
                raise ExecutionError(f"unknown relation {relation!r}")
            schema = TableSchema(
                name=relation.alias,
                columns=tuple(ColumnDef(c, "any") for c in columns),
            )
            table = client_db.create_table(schema)
            table.rows = rows  # Trusted side: skip re-validation for speed.

        if plan.residual is None:
            only = next(iter(client_db.tables.values()))
            return ResultSet(list(only.schema.column_names), list(only.rows))
        if deadline is not None:
            deadline.check()
        executor = Executor(client_db)
        with ledger.timing_client():
            return executor.execute(plan.residual, params=residual_params)

    # -- remote materialization ------------------------------------------------------

    def _materialize_remote(
        self,
        relation: RemoteRelation,
        server_params: dict[str, object],
        ledger: CostLedger,
        deadline: Deadline | None = None,
    ) -> tuple[list[str], list[tuple]]:
        execute_kwargs: dict[str, object] = {}
        if deadline is not None and supports_deadline(self.backend):
            execute_kwargs["deadline"] = deadline

        def attempt() -> ResultSet:
            with ledger.timing_server():
                return self.backend.execute(
                    relation.query, params=server_params, **execute_kwargs
                )

        def note(attempt_no: int, exc: BaseException) -> None:
            # Abandoned materialized attempts charge no retry bytes: a
            # failed execute produced no result and reports no scan.
            ledger.retries += 1

        result = retry_call(
            attempt,
            self.retry_policy,
            deadline=deadline,
            rng=self._retry_rng,
            on_retry=note,
        )
        bytes_scanned = self.backend.last_stats.bytes_scanned
        ledger.server_bytes_scanned += bytes_scanned
        ledger.server_seconds += self.disk.read_seconds(bytes_scanned)
        ledger.add_transfer(result.byte_size(), self.network)

        with ledger.timing_client():
            columns, rows = self._decrypt_rows(relation, result)
            if relation.unnest:
                rows = _unnest_rows(columns, rows, relation.specs)
        return columns, rows

    def _decrypt_rows(
        self, relation: RemoteRelation, result: ResultSet
    ) -> tuple[list[str], list[tuple]]:
        """Columnar client decryption (the Fig. 7 hot path).

        The result set is transposed so each server output column decrypts
        as one batch — a single scheme/type dispatch per
        :class:`DecryptSpec` instead of one per value, with packed Paillier
        ciphertexts gathered column-wide into one CRT-batched decryption.
        The streaming path calls the same :meth:`_decrypt_columns` per
        RowBlock (already column-major — no transpose needed).
        """
        specs = relation.specs
        if len(specs) != len(result.columns):
            raise ExecutionError(
                f"decrypt spec count {len(specs)} != result columns "
                f"{len(result.columns)}"
            )
        columns: list[str] = []
        for spec in specs:
            columns.extend(spec.output_names)
        if not result.rows:
            return columns, []
        out_columns = self._decrypt_columns(specs, list(zip(*result.rows)))
        return columns, list(zip(*out_columns))

    def _decrypt_columns(self, specs: list[DecryptSpec], in_columns) -> list[list]:
        """Decrypt server output columns into client virtual columns."""
        out_columns: list[list] = []
        for spec, in_column in zip(specs, in_columns):
            out_columns.extend(self._decrypt_column(spec, in_column))
        return out_columns

    def _decrypt_column(self, spec: DecryptSpec, values) -> list[list]:
        """Decrypt one server output column into its output column(s)."""
        if spec.kind == "plain":
            return [list(values)]
        if spec.kind in ("det", "ope", "rnd"):
            return [self.provider.decrypt_batch(values, spec.kind, spec.sql_type)]
        if spec.kind == "grp":
            # Flatten every group's list into one column-wide batch so the
            # crypto layer dedups and shares tree descents across groups,
            # then split back by the recorded group lengths.
            flat: list = []
            lengths: list[int | None] = []
            for value in values:
                if value is None:
                    lengths.append(None)
                else:
                    lengths.append(len(value))
                    flat.extend(value)
            decrypted = self.provider.decrypt_batch(
                flat, spec.elem_kind, spec.sql_type
            )
            out: list = []
            pos = 0
            for length in lengths:
                if length is None:
                    out.append([])
                else:
                    out.append(decrypted[pos : pos + length])
                    pos += length
            return [out]
        if spec.kind == "hom":
            return self._decrypt_hom_column(spec, values)
        raise ExecutionError(f"unknown decrypt spec kind {spec.kind!r}")

    def _decrypt_hom_column(self, spec: DecryptSpec, values) -> list[list]:
        width = len(spec.hom_output_names)
        # Gather every Paillier ciphertext the column carries (running
        # products first, then partials, per value) so the whole column
        # decrypts in one CRT batch.
        ciphertexts: list[int] = []
        for value in values:
            if value is None:
                continue
            if not isinstance(value, HomAggResult):
                raise ExecutionError("hom spec over a non-homomorphic value")
            if value.product is not None:
                ciphertexts.append(value.product)
            ciphertexts.extend(ct for ct, _ in value.partials)
        plaintexts = iter(self.provider.paillier_decrypt_batch(ciphertexts))
        out_rows: list[list] = []
        for value in values:
            if value is None:
                out_rows.append([None] * width)
                continue
            layout = value.layout
            totals = [0] * width
            saw_any = False
            if value.product is not None:
                sums = layout.decode_column_sums(next(plaintexts))
                totals = [t + s for t, s in zip(totals, sums)]
                saw_any = True
            for _, offsets in value.partials:
                plaintext = layout.decode_rows(
                    next(plaintexts), layout.rows_per_ciphertext
                )
                for offset in offsets:
                    if offset >= len(plaintext):
                        raise ExecutionError("hom partial offset out of range")
                    for c in range(width):
                        totals[c] += plaintext[offset][c]
                saw_any = True
            out_rows.append(totals if saw_any else [None] * width)
        return [list(column) for column in zip(*out_rows)]


def _unnest_rows(
    columns: list[str], rows: list[tuple], specs: list[DecryptSpec]
) -> list[tuple]:
    """Explode grp() list columns back into one row per group element,
    replicating per-group scalars (hom sums, keys, counts)."""
    list_positions: list[int] = []
    position = 0
    for spec in specs:
        for _ in spec.output_names:
            if spec.kind == "grp":
                list_positions.append(position)
            position += 1
    if not list_positions:
        return rows
    is_list = frozenset(list_positions)
    out: list[tuple] = []
    for row in rows:
        lengths = {len(row[i]) for i in list_positions}
        if len(lengths) != 1:
            raise ExecutionError("misaligned grp() lists in one group")
        (length,) = lengths
        width = len(row)
        for index in range(length):
            out.append(
                tuple(
                    row[i][index] if i in is_list else row[i]
                    for i in range(width)
                )
            )
    return out
