"""Split-plan execution: the MONOMI client library's runtime half.

Runs a :class:`~repro.core.plan.SplitPlan` against the untrusted server:

1. execute subplans (their results bind as DET-encrypted server-side IN
   sets or plaintext residual parameters — the multi-round-trip plans);
2. for each RemoteRelation: run the encrypted query on the server
   (charging measured server CPU + modeled disk time for bytes scanned),
   charge modeled network time for the intermediate result's exact bytes,
   then decrypt every output column on the client per its DecryptSpec
   (charging measured client CPU), unnesting grp() lists when the plan
   says so;
3. run the residual query over the decrypted virtual tables with the same
   relational engine, on the trusted side.

The returned :class:`~repro.common.ledger.CostLedger` carries the paper's
three cost components (§6.4) for every benchmark to aggregate.
"""

from __future__ import annotations

from repro.common.errors import ExecutionError
from repro.common.ledger import CostLedger, DiskModel, NetworkModel
from repro.core.encdata import CryptoProvider
from repro.core.plan import ClientRelation, DecryptSpec, RemoteRelation, SplitPlan
from repro.engine.aggregates import HomAggResult
from repro.engine.catalog import Database
from repro.engine.executor import Executor, ResultSet
from repro.engine.schema import ColumnDef, TableSchema
from repro.server.backend import ServerBackend, as_backend

_TYPE_MAP = {
    "int": "int",
    "float": "float",
    "text": "text",
    "date": "date",
    "bool": "bool",
}


class PlanExecutor:
    """Executes split plans for one (server backend, key chain) pair."""

    def __init__(
        self,
        server: Database | ServerBackend,
        provider: CryptoProvider,
        network: NetworkModel | None = None,
        disk: DiskModel | None = None,
    ) -> None:
        self.backend = as_backend(server)
        self.provider = provider
        self.network = network or NetworkModel()
        self.disk = disk or DiskModel()

    # -- public ---------------------------------------------------------------

    def execute(self, plan: SplitPlan) -> tuple[ResultSet, CostLedger]:
        ledger = CostLedger()
        result = self._run(plan, ledger)
        return result, ledger

    # -- internals ----------------------------------------------------------------

    def _run(self, plan: SplitPlan, ledger: CostLedger) -> ResultSet:
        server_params: dict[str, object] = {}
        residual_params: dict[str, object] = {}
        for subplan in plan.subplans:
            sub_result = self._run(subplan.plan, ledger)
            values = [row[0] for row in sub_result.rows]
            if subplan.mode == "in_set_server":
                with ledger.timing_client():
                    encrypted = frozenset(
                        self.provider.det_encrypt_batch(
                            [v for v in values if v is not None]
                        )
                    )
                server_params[subplan.param_name] = encrypted
            elif subplan.mode == "scalar_residual":
                if len(values) > 1:
                    raise ExecutionError("scalar subplan returned multiple rows")
                residual_params[subplan.param_name] = values[0] if values else None
            elif subplan.mode == "set_residual":
                residual_params[subplan.param_name] = frozenset(
                    v for v in values if v is not None
                )
            else:
                raise ExecutionError(f"unknown subplan mode {subplan.mode!r}")

        client_db = Database("client_tmp")
        for relation in plan.relations:
            if isinstance(relation, RemoteRelation):
                columns, rows = self._materialize_remote(relation, server_params, ledger)
            elif isinstance(relation, ClientRelation):
                inner = self._run(relation.plan, ledger)
                columns, rows = list(inner.columns), inner.rows
            else:
                raise ExecutionError(f"unknown relation {relation!r}")
            schema = TableSchema(
                name=relation.alias,
                columns=tuple(ColumnDef(c, "any") for c in columns),
            )
            table = client_db.create_table(schema)
            table.rows = rows  # Trusted side: skip re-validation for speed.

        if plan.residual is None:
            only = next(iter(client_db.tables.values()))
            return ResultSet(list(only.schema.column_names), list(only.rows))
        executor = Executor(client_db)
        with ledger.timing_client():
            return executor.execute(plan.residual, params=residual_params)

    # -- remote materialization ------------------------------------------------------

    def _materialize_remote(
        self,
        relation: RemoteRelation,
        server_params: dict[str, object],
        ledger: CostLedger,
    ) -> tuple[list[str], list[tuple]]:
        with ledger.timing_server():
            result = self.backend.execute(relation.query, params=server_params)
        bytes_scanned = self.backend.last_stats.bytes_scanned
        ledger.server_bytes_scanned += bytes_scanned
        ledger.server_seconds += self.disk.read_seconds(bytes_scanned)
        ledger.add_transfer(result.byte_size(), self.network)

        with ledger.timing_client():
            columns, rows = self._decrypt_rows(relation, result)
            if relation.unnest:
                rows = _unnest_rows(columns, rows, relation.specs)
        return columns, rows

    def _decrypt_rows(
        self, relation: RemoteRelation, result: ResultSet
    ) -> tuple[list[str], list[tuple]]:
        """Columnar client decryption (the Fig. 7 hot path).

        The result set is transposed so each server output column decrypts
        as one batch — a single scheme/type dispatch per
        :class:`DecryptSpec` instead of one per value, with packed Paillier
        ciphertexts gathered column-wide into one CRT-batched decryption.
        """
        specs = relation.specs
        if len(specs) != len(result.columns):
            raise ExecutionError(
                f"decrypt spec count {len(specs)} != result columns "
                f"{len(result.columns)}"
            )
        columns: list[str] = []
        for spec in specs:
            columns.extend(spec.output_names)
        if not result.rows:
            return columns, []
        out_columns: list[list] = []
        for spec, in_column in zip(specs, zip(*result.rows)):
            out_columns.extend(self._decrypt_column(spec, in_column))
        return columns, list(zip(*out_columns))

    def _decrypt_column(self, spec: DecryptSpec, values) -> list[list]:
        """Decrypt one server output column into its output column(s)."""
        if spec.kind == "plain":
            return [list(values)]
        if spec.kind in ("det", "ope", "rnd"):
            return [self.provider.decrypt_batch(values, spec.kind, spec.sql_type)]
        if spec.kind == "grp":
            decrypt_batch = self.provider.decrypt_batch
            elem_kind, sql_type = spec.elem_kind, spec.sql_type
            return [
                [
                    []
                    if value is None
                    else decrypt_batch(value, elem_kind, sql_type)
                    for value in values
                ]
            ]
        if spec.kind == "hom":
            return self._decrypt_hom_column(spec, values)
        raise ExecutionError(f"unknown decrypt spec kind {spec.kind!r}")

    def _decrypt_hom_column(self, spec: DecryptSpec, values) -> list[list]:
        width = len(spec.hom_output_names)
        # Gather every Paillier ciphertext the column carries (running
        # products first, then partials, per value) so the whole column
        # decrypts in one CRT batch.
        ciphertexts: list[int] = []
        for value in values:
            if value is None:
                continue
            if not isinstance(value, HomAggResult):
                raise ExecutionError("hom spec over a non-homomorphic value")
            if value.product is not None:
                ciphertexts.append(value.product)
            ciphertexts.extend(ct for ct, _ in value.partials)
        plaintexts = iter(self.provider.paillier_decrypt_batch(ciphertexts))
        out_rows: list[list] = []
        for value in values:
            if value is None:
                out_rows.append([None] * width)
                continue
            layout = value.layout
            totals = [0] * width
            saw_any = False
            if value.product is not None:
                sums = layout.decode_column_sums(next(plaintexts))
                totals = [t + s for t, s in zip(totals, sums)]
                saw_any = True
            for _, offsets in value.partials:
                plaintext = layout.decode_rows(
                    next(plaintexts), layout.rows_per_ciphertext
                )
                for offset in offsets:
                    if offset >= len(plaintext):
                        raise ExecutionError("hom partial offset out of range")
                    for c in range(width):
                        totals[c] += plaintext[offset][c]
                saw_any = True
            out_rows.append(totals if saw_any else [None] * width)
        return [list(column) for column in zip(*out_rows)]


def _unnest_rows(
    columns: list[str], rows: list[tuple], specs: list[DecryptSpec]
) -> list[tuple]:
    """Explode grp() list columns back into one row per group element,
    replicating per-group scalars (hom sums, keys, counts)."""
    list_positions: list[int] = []
    position = 0
    for spec in specs:
        for _ in spec.output_names:
            if spec.kind == "grp":
                list_positions.append(position)
            position += 1
    if not list_positions:
        return rows
    out: list[tuple] = []
    for row in rows:
        lengths = {len(row[i]) for i in list_positions}
        if len(lengths) != 1:
            raise ExecutionError("misaligned grp() lists in one group")
        (length,) = lengths
        for index in range(length):
            out.append(
                tuple(
                    row[i][index] if i in set(list_positions) else row[i]
                    for i in range(len(row))
                )
            )
    return out
