"""MONOMI's cost model (§6.4): server + network + client decryption.

The planner prices a candidate split plan as::

    cost = server_exec_seconds          (engine optimizer estimate)
         + transfer_seconds             (estimated result bytes / bandwidth)
         + client_seconds               (decryption profile x result shape
                                         + residual processing)

Per-scheme decryption costs come from :class:`DecryptionProfiler`, which
times a small batch of decryptions when the client starts — exactly the
paper's "running a profiler that decrypts a small amount of data when
MONOMI is first launched".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.common.ledger import NetworkModel
from repro.core.encdata import CryptoProvider
from repro.core.plan import ClientRelation, DecryptSpec, RemoteRelation, SplitPlan
from repro.engine.catalog import Database
from repro.engine.cost import CostEstimator, HomFileInfo, PAGE_BYTES

# Calibration: seconds per optimizer cost unit.  One cost unit is roughly a
# page fetch (8 KiB), so this corresponds to the disk model's throughput.
SECONDS_PER_COST_UNIT = PAGE_BYTES / 300_000_000.0
# Per-row client processing in the residual engine (interpreter overhead on
# top of decryption proper).
CLIENT_TUPLE_SECONDS = 2e-5


@dataclass
class DecryptionProfile:
    det_int: float
    det_text: float
    ope: float
    rnd: float
    paillier: float
    hom_multiply: float = 2e-6  # Server-side modular multiplication.

    def for_spec(self, spec: DecryptSpec) -> float:
        if spec.kind == "plain":
            return 0.0
        if spec.kind == "det":
            return self.det_int if spec.sql_type in ("int", "date", "bool") else self.det_text
        if spec.kind == "ope":
            return self.ope
        if spec.kind == "rnd":
            return self.rnd
        if spec.kind == "grp":
            elem = DecryptSpec(spec.elem_kind, spec.output_name, spec.sql_type)
            return self.for_spec(elem)
        if spec.kind == "hom":
            return self.paillier
        return self.det_int


class DecryptionProfiler:
    """Times each scheme's **batch** decryption throughput (done once).

    Costs are measured through the same column-batch APIs the executor
    uses (shared-tree OPE descent, FFX round loops, per-batch dedup), on
    cold caches — the planner prices first-touch decryption, and
    encryption warms the value and pivot caches that decryption shares.

    The profile is stored on the provider instance itself (not a registry
    keyed by ``id()``, which a garbage-collected provider's address could
    alias), and profiling is serialized by a lock: concurrent service
    sessions constructing cost models against one shared provider must
    neither profile twice nor time decryptions while another thread's
    profiling run competes for the CPU and skews the numbers.
    """

    _lock = threading.Lock()

    @classmethod
    def profile(cls, provider: CryptoProvider, batch: int = 24) -> DecryptionProfile:
        cached = getattr(provider, "_decryption_profile", None)
        if cached is not None:
            return cached
        with cls._lock:
            cached = getattr(provider, "_decryption_profile", None)
            if cached is not None:
                return cached
            profile = cls._measure(provider, batch)
            provider._decryption_profile = profile
            return profile

    @classmethod
    def _measure(cls, provider: CryptoProvider, batch: int) -> DecryptionProfile:
        det_int_cts = provider.det_encrypt_batch([i * 7919 for i in range(batch)])
        det_text_cts = provider.det_encrypt_batch(
            [f"value-{i:06d}" for i in range(batch)]
        )
        ope_cts = provider.ope_encrypt_batch([i * 104729 % 100000 for i in range(batch)])
        rnd_cts = provider.rnd_encrypt_batch(list(range(batch)))
        pub = provider.paillier_public
        hom_cts = [pub.encrypt(i + 1) for i in range(max(4, batch // 4))]

        def timed_batch(fn, cts) -> float:
            # Encryption above warmed the shared value and pivot caches;
            # first-touch decryption is what the planner must price.
            provider.reset_crypto_caches()
            start = time.perf_counter()
            fn(cts)
            return (time.perf_counter() - start) / len(cts)

        def timed(fn, items) -> float:
            start = time.perf_counter()
            for item in items:
                fn(item)
            return (time.perf_counter() - start) / len(items)

        start = time.perf_counter()
        acc = hom_cts[0]
        for _ in range(64):
            for c in hom_cts:
                acc = pub.add(acc, c)
        hom_mul = (time.perf_counter() - start) / (64 * len(hom_cts))

        return DecryptionProfile(
            det_int=timed_batch(
                lambda cts: provider.det_decrypt_batch(cts, "int"), det_int_cts
            ),
            det_text=timed_batch(
                lambda cts: provider.det_decrypt_batch(cts, "text"), det_text_cts
            ),
            ope=timed_batch(
                lambda cts: provider.ope_decrypt_batch(cts, "int"), ope_cts
            ),
            rnd=timed_batch(provider.rnd_decrypt_batch, rnd_cts),
            paillier=timed(provider.paillier_private.decrypt, hom_cts),
            hom_multiply=hom_mul,
        )


@dataclass
class CostBreakdown:
    server_seconds: float = 0.0
    transfer_seconds: float = 0.0
    client_seconds: float = 0.0
    transfer_bytes: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.server_seconds + self.transfer_seconds + self.client_seconds

    def add(self, other: "CostBreakdown") -> None:
        self.server_seconds += other.server_seconds
        self.transfer_seconds += other.transfer_seconds
        self.client_seconds += other.client_seconds
        self.transfer_bytes += other.transfer_bytes


class MonomiCostModel:
    """Prices split plans against a (possibly hypothetical) physical design.

    ``table_bytes`` / ``hom_info`` overrides let the designer price plans
    for candidate designs that are not loaded anywhere; at runtime the
    loaded server database supplies real sizes.
    """

    def __init__(
        self,
        stats_db: Database,
        provider: CryptoProvider,
        network: NetworkModel | None = None,
        table_bytes: dict[str, float] | None = None,
        hom_info: dict[str, HomFileInfo] | None = None,
    ) -> None:
        self.network = network or NetworkModel()
        self.profile = DecryptionProfiler.profile(provider)
        self.estimator = CostEstimator(
            stats_db,
            table_bytes_override=table_bytes,
            hom_info_override=hom_info,
            modmul_cost=self.profile.hom_multiply / SECONDS_PER_COST_UNIT,
        )

    # -- public ----------------------------------------------------------------

    def plan_cost(self, plan: SplitPlan) -> CostBreakdown:
        breakdown = CostBreakdown()
        for subplan in plan.subplans:
            breakdown.add(self.plan_cost(subplan.plan))
        for relation in plan.relations:
            if isinstance(relation, RemoteRelation):
                breakdown.add(self._remote_cost(relation))
            elif isinstance(relation, ClientRelation):
                breakdown.add(self.plan_cost(relation.plan))
        return breakdown

    # -- internals ------------------------------------------------------------------

    def _remote_cost(self, relation: RemoteRelation) -> CostBreakdown:
        estimate = self.estimator.estimate(
            relation.query, selectivity_override=relation.plain_selectivity
        )
        out = CostBreakdown()
        out.server_seconds = estimate.cost_units * SECONDS_PER_COST_UNIT
        result_bytes = estimate.result_bytes
        out.transfer_bytes = result_bytes
        out.transfer_seconds = self.network.transfer_seconds(int(result_bytes))
        out.client_seconds = self._decrypt_cost(relation, estimate)
        return out

    def _decrypt_cost(self, relation: RemoteRelation, estimate) -> float:
        from repro.engine.cost import estimate_hom_ciphertexts

        rows = estimate.rows
        group_size = estimate.group_size
        per_row = 0.0
        unnest_factor = group_size if relation.unnest else 1.0
        for spec in relation.specs:
            unit = self.profile.for_spec(spec)
            if spec.kind == "grp":
                # Per-element decryption plus interpreter dispatch.
                per_row += (unit + 5e-6) * group_size
            elif spec.kind == "hom":
                # One Paillier decryption per shipped ciphertext: the group
                # product plus every partially covered packed ciphertext.
                info = self.estimator.hom_info_override.get(spec.hom_file)
                if info is None:
                    try:
                        file = self.estimator.db.ciphertext_store.get(spec.hom_file)
                        rows_per_ct = file.rows_per_ciphertext
                    except Exception:
                        rows_per_ct = 1
                else:
                    rows_per_ct = info.rows_per_ciphertext
                per_row += unit * estimate_hom_ciphertexts(
                    rows_per_ct, group_size, rows, estimate.selectivity
                )
            else:
                per_row += unit
        residual = rows * unnest_factor * CLIENT_TUPLE_SECONDS
        return rows * per_row + residual
