"""The MONOMI designer (§6): choose the encrypted physical design.

Given a representative workload over a plaintext database sample:

1. extract each query's EncSet units (§6.2 step 1, §6.3 pruning);
2. for every unit subset, build the candidate design, run Algorithm 1, and
   price the plan with the cost model (§6.2 steps 2-3) — sizing candidate
   tables analytically, since nothing is loaded yet;
3. either take the union of each query's best subset (the unconstrained
   algorithm of §6.2), or solve the §6.5 ILP under a space budget
   ``S × plainsize``.

A ``Space-Greedy`` baseline (drop the largest column until the budget is
met) reproduces §8.6's comparison.

``det_default`` adds DET copies for key-like and category-like columns even
when no workload query needs them — the paper's §8.5 default, which is what
lets designs generalize to unseen queries (Figure 8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.errors import InfeasibleDesignError, PlanningError, UnsupportedQueryError
from repro.common.ledger import NetworkModel
from repro.core.candidates import (
    base_design_for_plain,
    build_candidate,
    unit_subsets,
)
from repro.core.cost import MonomiCostModel
from repro.core.design import (
    EncEntry,
    HomGroup,
    PhysicalDesign,
    TechniqueFlags,
)
from repro.core.encdata import CryptoProvider
from repro.core.encset import EncSetExtractor, Pair, Unit
from repro.core.ilp import IlpCandidate, IlpProblem, solve
from repro.core.schemes import Scheme
from repro.core.sizer import DesignSizer
from repro.core.splitter import generate_query_plan
from repro.engine.catalog import Database
from repro.sql import ast


@dataclass
class CandidatePlan:
    subset: tuple[Unit, ...]
    cost: float
    design: PhysicalDesign
    item_keys: frozenset


@dataclass
class DesignResult:
    design: PhysicalDesign
    per_query_cost: list[float]
    setup_seconds: float
    chosen_subsets: list[tuple[Unit, ...]] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(self.per_query_cost)


class Designer:
    def __init__(
        self,
        plain_db: Database,
        provider: CryptoProvider,
        flags: TechniqueFlags = TechniqueFlags(),
        network: NetworkModel | None = None,
        det_default: bool = True,
    ) -> None:
        self.plain_db = plain_db
        self.provider = provider
        self.flags = flags
        self.network = network or NetworkModel()
        self.det_default = det_default
        self.schemas = {name: t.schema for name, t in plain_db.tables.items()}
        self.sizer = DesignSizer(plain_db, provider)
        self.extractor = EncSetExtractor(self.schemas, flags)
        self._base = base_design_for_plain(plain_db)
        self._candidate_cache: dict[int, list[CandidatePlan]] = {}

    # -- candidate enumeration (§6.2 steps 2-3) ---------------------------------

    def candidates_for(self, query: ast.Select) -> list[CandidatePlan]:
        key = id(query)
        if key in self._candidate_cache:
            return self._candidate_cache[key]
        units = [u for u in self.extractor.extract(query) if self._unit_loadable(u)]
        # Space-expensive units must be *choices* (enumerable head), not
        # forced inclusions: order by projected size, largest first.
        units.sort(key=self._unit_size_estimate, reverse=True)
        out: list[CandidatePlan] = []
        for subset in unit_subsets(units):
            if self._conflicting_hom_variants(subset):
                continue  # Per-row and columnar are alternatives, not a pair.
            candidate = build_candidate(self._base, subset, self.flags)
            cost = self._plan_cost(query, candidate)
            if cost is None:
                continue
            out.append(
                CandidatePlan(
                    subset=subset,
                    cost=cost,
                    design=candidate,
                    item_keys=frozenset(self._item_keys(subset, candidate)),
                )
            )
        if not out:
            raise PlanningError("query admits no feasible design candidates")
        self._candidate_cache[key] = out
        return out

    def _plan_cost(self, query: ast.Select, candidate: PhysicalDesign) -> float | None:
        table_bytes = {
            name: self.sizer.table_bytes(candidate, name) for name in self.schemas
        }
        hom_info = {
            group.file_name: self.sizer.group_info(group)
            for group in candidate.hom_groups
        }
        model = MonomiCostModel(
            self.plain_db,
            self.provider,
            network=self.network,
            table_bytes=table_bytes,
            hom_info=hom_info,
        )
        try:
            plan = generate_query_plan(
                query,
                candidate,
                self.schemas,
                self.provider,
                self.flags,
                self.stats_max,
                plain_db=self.plain_db,
            )
        except (PlanningError, UnsupportedQueryError):
            return None
        return model.plan_cost(plan).total_seconds

    @staticmethod
    def _conflicting_hom_variants(subset: tuple[Unit, ...]) -> bool:
        from repro.core.candidates import conflicting_hom_variants

        return conflicting_hom_variants(subset)

    def _unit_size_estimate(self, unit: Unit) -> float:
        from repro.core.candidates import COLUMNAR_ROWS_PER_CT

        total = 0.0
        for pair in unit.pairs:
            if pair.scheme is Scheme.HOM:
                rows = COLUMNAR_ROWS_PER_CT if pair.variant == "col" else 1
                group = HomGroup(pair.table, (pair.expr_sql,), rows)
                total += self.sizer.group_bytes(group)
            else:
                entry = EncEntry(pair.table, pair.expr_sql, pair.scheme)
                if pair.scheme is Scheme.DET and not entry.is_precomputed:
                    continue
                total += self.sizer.entry_bytes(entry)
        return total

    def _item_keys(self, subset: tuple[Unit, ...], candidate: PhysicalDesign):
        from repro.core.candidates import _loaded_group_for

        keys: list = []
        for unit in subset:
            for pair in unit.pairs:
                if pair.scheme is Scheme.HOM:
                    group = _loaded_group_for(candidate, pair)
                    if group is not None:
                        keys.append(("group", group))
                else:
                    keys.append(("pair", pair))
        return keys

    # -- unconstrained designer (§6.2) ----------------------------------------------

    def design_greedy(self, queries: list[ast.Select]) -> DesignResult:
        start = time.perf_counter()
        design = self._base.copy()
        costs: list[float] = []
        subsets: list[tuple[Unit, ...]] = []
        for query in queries:
            candidates = self.candidates_for(query)
            best = min(candidates, key=lambda c: c.cost)
            design = design.union(best.design)
            costs.append(best.cost)
            subsets.append(best.subset)
        design = self._with_det_defaults(design)
        return DesignResult(design, costs, time.perf_counter() - start, subsets)

    # -- ILP designer (§6.5) ------------------------------------------------------------

    def design_ilp(self, queries: list[ast.Select], space_budget: float = 2.0) -> DesignResult:
        start = time.perf_counter()
        plainsize = self.sizer.plaintext_bytes()
        base_size = self.sizer.design_bytes(self._with_det_defaults(self._base.copy()))
        budget = space_budget * plainsize - base_size
        if budget < 0:
            raise InfeasibleDesignError(
                f"space budget S={space_budget} is below the all-DET baseline"
            )
        ilp_candidates: list[IlpCandidate] = []
        item_sizes: dict = {}
        per_query_candidates: list[list[CandidatePlan]] = []
        for qi, query in enumerate(queries):
            candidates = self.candidates_for(query)
            per_query_candidates.append(candidates)
            for candidate in candidates:
                for key in candidate.item_keys:
                    if key not in item_sizes:
                        item_sizes[key] = self._item_size(key)
                ilp_candidates.append(
                    IlpCandidate(qi, candidate.cost, candidate.item_keys)
                )
        problem = IlpProblem(ilp_candidates, item_sizes, budget)
        solution = solve(problem)
        design = self._base.copy()
        costs: list[float] = []
        subsets: list[tuple[Unit, ...]] = []
        for qi, query in enumerate(queries):
            picked = solution.chosen[qi]
            match = next(
                c
                for c in per_query_candidates[qi]
                if c.item_keys == picked.item_keys and abs(c.cost - picked.cost) < 1e-12
            )
            design = design.union(match.design)
            costs.append(match.cost)
            subsets.append(match.subset)
        design = self._with_det_defaults(design)
        return DesignResult(design, costs, time.perf_counter() - start, subsets)

    def _item_size(self, key) -> float:
        kind, payload = key
        if kind == "group":
            return self.sizer.group_bytes(payload)
        pair: Pair = payload
        entry = EncEntry(pair.table, pair.expr_sql, pair.scheme)
        if pair.scheme is Scheme.DET and not entry.is_precomputed:
            return 0.0  # Coincides with the DET fallback copy.
        return self.sizer.entry_bytes(entry)

    # -- Space-Greedy baseline (§8.6) -----------------------------------------------------

    def design_space_greedy(
        self, queries: list[ast.Select], space_budget: float = 2.0
    ) -> DesignResult:
        """Unconstrained design, then delete the largest column until the
        budget is met."""
        start = time.perf_counter()
        result = self.design_greedy(queries)
        design = result.design
        plainsize = self.sizer.plaintext_bytes()
        limit = space_budget * plainsize
        while self.sizer.design_bytes(design) > limit:
            droppable: list[tuple[float, EncEntry]] = []
            for entry in design.entries:
                if entry.scheme is Scheme.DET and not entry.is_precomputed:
                    continue  # Fallback copies cannot be dropped.
                if entry.scheme is Scheme.HOM:
                    group = design.hom_group_for(entry.table, entry.expr_sql)
                    size = self.sizer.group_bytes(group) if group else 0.0
                else:
                    size = self.sizer.entry_bytes(entry)
                droppable.append((size, entry))
            if not droppable:
                raise InfeasibleDesignError(
                    "Space-Greedy cannot meet the budget: nothing left to drop"
                )
            droppable.sort(key=lambda pair: (-pair[0], repr(pair[1])))
            design = design.without_entry(droppable[0][1])
        costs = [self._plan_cost_loaded(query, design) for query in queries]
        return DesignResult(design, costs, time.perf_counter() - start)

    def _plan_cost_loaded(self, query: ast.Select, design: PhysicalDesign) -> float:
        cost = self._plan_cost(query, design)
        return cost if cost is not None else float("inf")

    # -- shared helpers ---------------------------------------------------------------------

    def stats_max(self, table: str, expr_sql: str) -> int | None:
        """Maximum value of an expression over the plaintext sample (§5.4's
        ``m``)."""
        from repro.engine.eval import Env, EvalContext, Scope, evaluate
        from repro.sql import parse_expression

        tbl = self.plain_db.tables.get(table)
        if tbl is None:
            return None
        expr = parse_expression(expr_sql)
        scope = Scope([(table, c) for c in tbl.schema.column_names])
        ctx = EvalContext()
        best: int | None = None
        for row in tbl.rows:
            value = evaluate(expr, Env(scope, row), ctx)
            if isinstance(value, int) and not isinstance(value, bool):
                best = value if best is None else max(best, value)
        return best

    def _unit_loadable(self, unit: Unit) -> bool:
        """Homomorphic packing needs non-negative integers (§5.3's layout
        has no sign bit); drop HOM pairs the data cannot satisfy.  Columnar
        variants that cannot actually fit more than one row per ciphertext
        (payload too small) duplicate the per-row unit and are dropped."""
        for pair in unit.pairs:
            if pair.scheme is Scheme.HOM:
                low = self._stats_min(pair.table, pair.expr_sql)
                if low is None or low < 0:
                    return False
                if pair.variant == "col":
                    from repro.core.candidates import COLUMNAR_ROWS_PER_CT

                    probe = HomGroup(
                        pair.table, (pair.expr_sql,), COLUMNAR_ROWS_PER_CT
                    )
                    if self.sizer.group_info(probe).rows_per_ciphertext <= 1:
                        return False
        return True

    def _stats_min(self, table: str, expr_sql: str) -> int | None:
        from repro.engine.eval import Env, EvalContext, Scope, evaluate
        from repro.sql import parse_expression

        key = (table, expr_sql)
        if key in getattr(self, "_min_cache", {}):
            return self._min_cache[key]
        if not hasattr(self, "_min_cache"):
            self._min_cache: dict = {}
        tbl = self.plain_db.tables.get(table)
        if tbl is None:
            self._min_cache[key] = None
            return None
        expr = parse_expression(expr_sql)
        scope = Scope([(table, c) for c in tbl.schema.column_names])
        ctx = EvalContext()
        best: int | None = None
        for row in tbl.rows:
            value = evaluate(expr, Env(scope, row), ctx)
            if isinstance(value, bool) or not isinstance(value, int):
                if value is not None:
                    self._min_cache[key] = None
                    return None
                continue
            best = value if best is None else min(best, value)
        self._min_cache[key] = best
        return best

    def _with_det_defaults(self, design: PhysicalDesign) -> PhysicalDesign:
        """§8.5: DET by default for keys and enumerations/categories."""
        if not self.det_default:
            return design
        out = design.copy()
        for name, table in self.plain_db.tables.items():
            stats = table.analyze()
            for column in table.schema.columns:
                is_key = column.name.endswith("key")
                is_category = (
                    column.type == "text"
                    and 0 < stats[column.name].num_distinct <= 50
                )
                if is_key or is_category:
                    out.add(name, ast.Column(column.name), Scheme.DET)
        return out
