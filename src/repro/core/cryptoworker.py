"""Process-side half of :class:`~repro.core.encdata.CryptoProvider`'s pool.

Worker processes cannot receive the parent's provider (it owns live pool
handles); instead each worker builds its **own** provider once, at pool
startup, from the same master key — every symmetric key re-derives to the
same bytes, and the (expensive) Paillier key pair is shipped in rather
than re-generated, so a worker is crypto-identical to the parent by
construction.  DET/OPE/RND/SEARCH and Paillier *decryption* are
deterministic functions of the keys, which is what makes sharded batches
element-wise identical to serial ones.  Paillier *encryption* randomness
deliberately differs per worker: each process seeds a fresh
:class:`~repro.crypto.paillier.EncryptionPool` from OS randomness, so two
workers never repeat obfuscation factors (same argument as the parent's
unseeded pool).

Workers run on the trusted client side — holding the private key here is
the same trust the parent process already has (§3: the client library is
the only key holder).

Everything in this module must stay importable at module scope: the pool
pickles ``init_worker`` / ``run_chunk`` by reference, under fork and
spawn start methods alike.
"""

from __future__ import annotations

from repro.common.errors import CryptoError

# One provider per worker process, installed by :func:`init_worker`.
_PROVIDER = None


def init_worker(
    master_key: bytes,
    paillier_bits: int,
    ope_expansion_bits: int,
    cache_size: int,
    paillier_keys: tuple,
    pivot_cache_size: int | None = None,
) -> None:
    """Build this process' serial provider (runs once per worker)."""
    global _PROVIDER
    from repro.core.encdata import DEFAULT_PIVOT_CACHE, CryptoProvider

    _PROVIDER = CryptoProvider(
        master_key,
        paillier_bits=paillier_bits,
        ope_expansion_bits=ope_expansion_bits,
        cache_size=cache_size,
        workers=1,
        paillier_keys=paillier_keys,
        pivot_cache_size=(
            DEFAULT_PIVOT_CACHE if pivot_cache_size is None else pivot_cache_size
        ),
    )


def run_chunk(task: tuple) -> list:
    """Run one sharded batch op: ``(op, sql_type_or_None, values)``."""
    op, sql_type, values = task
    provider = _PROVIDER
    if provider is None:
        raise CryptoError("crypto worker used before init_worker ran")
    if op == "det_encrypt":
        return provider.det_encrypt_batch(values)
    if op == "det_decrypt":
        return provider.det_decrypt_batch(values, sql_type)
    if op == "ope_encrypt":
        return provider.ope_encrypt_batch(values)
    if op == "ope_decrypt":
        return provider.ope_decrypt_batch(values, sql_type)
    if op == "rnd_encrypt":
        return provider.rnd_encrypt_batch(values)
    if op == "rnd_decrypt":
        return provider.rnd_decrypt_batch(values)
    if op == "search_encrypt":
        return provider.search_encrypt_batch(values)
    if op == "paillier_encrypt":
        return provider.paillier_encrypt_batch(values)
    if op == "paillier_decrypt":
        return provider.paillier_decrypt_batch(values)
    raise CryptoError(f"unknown crypto worker op {op!r}")
