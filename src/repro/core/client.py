"""MONOMI client library: the only component holding decryption keys.

:class:`MonomiClient` is the public face of the system (Figure 1):

* :meth:`MonomiClient.setup` plays the setup phase — run the designer over
  a representative workload, encrypt and load the database onto the
  untrusted server, and profile decryption costs;
* :meth:`MonomiClient.execute` plays the runtime — normalize the incoming
  SQL, pick the best split plan with the planner, execute it against the
  server, decrypt, finish locally, and return plaintext rows together with
  the cost ledger.

The server half (:attr:`backend` — in-memory engine or real SQLite, see
:mod:`repro.server`) holds only ciphertexts, the Paillier public key, and
packing metadata; every decryption happens in this class' provider.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.service import MonomiService

from repro.common.errors import ConfigError, UnsupportedQueryError
from repro.common.ledger import CostLedger, DiskModel, NetworkModel
from repro.common.retry import Deadline
from repro.core.cost import MonomiCostModel
from repro.core.design import PhysicalDesign, TechniqueFlags
from repro.core.designer import Designer, DesignResult
from repro.core.encdata import CryptoProvider
from repro.core.loader import EncryptedLoader
from repro.core.normalize import (
    normalize_dml,
    normalize_for_execution,
    normalize_query,
)
from repro.core.pexec import PlanExecutor, PlanStream
from repro.core.planner import PlannedQuery, Planner
from repro.engine.catalog import Database
from repro.engine.executor import ResultSet
from repro.engine.rowblock import RowBlock
from repro.server import (
    ServerBackend,
    as_backend,
    make_backend,
    make_sharded_backend,
    maybe_wrap_chaos,
    resolve_shards,
)
from repro.server.inmemory import InMemoryBackend
from repro.sql import ast, parse, parse_statement


def _default_streaming() -> bool:
    """Streaming execution is the default; ``MONOMI_STREAMING=0`` forces
    the materializing path everywhere (CI runs the test matrix both ways)."""
    return os.environ.get("MONOMI_STREAMING", "1") != "0"


@dataclass
class QueryOutcome:
    """Everything one encrypted query execution produced.

    ``planned`` is ``None`` for DML statements — they execute through the
    :class:`~repro.core.dml.DmlExecutor`, not the split-query planner.
    """

    result: ResultSet
    ledger: CostLedger
    planned: PlannedQuery | None

    @property
    def rows(self) -> list[tuple]:
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        return self.result.columns


class QueryStream:
    """A streaming query outcome: iterate decrypted RowBlocks.

    The ledger accumulates while blocks are pulled and is final once the
    stream is exhausted (or closed).  Single-shot, like a cursor.
    """

    def __init__(self, stream: PlanStream, planned: PlannedQuery) -> None:
        self._stream = stream
        self.planned = planned

    @property
    def columns(self) -> list[str]:
        return self._stream.columns

    @property
    def ledger(self) -> CostLedger:
        return self._stream.ledger

    def __iter__(self) -> Iterator[RowBlock]:
        return iter(self._stream)

    def close(self) -> None:
        self._stream.close()

    def drain(self) -> QueryOutcome:
        """Pull every block and return the materialized outcome."""
        result = self._stream.drain()
        return QueryOutcome(result, self._stream.ledger, self.planned)


class MonomiClient:
    def __init__(
        self,
        plain_db: Database,
        design: PhysicalDesign,
        provider: CryptoProvider,
        server_db: Database | ServerBackend,
        flags: TechniqueFlags,
        network: NetworkModel,
        disk: DiskModel,
        design_result: DesignResult | None = None,
        streaming: bool | None = None,
        partitions: int | None = None,
        prefetch_blocks: int | None = None,
    ) -> None:
        self.plain_db = plain_db
        self.design = design
        self.provider = provider
        # MONOMI_CHAOS=seed:rate transparently interposes the fault
        # injection proxy here — after the load, before any query — which
        # turns every suite driven through a client into a chaos suite.
        self.backend = maybe_wrap_chaos(as_backend(server_db))
        self.flags = flags
        self.network = network
        self.disk = disk
        self.design_result = design_result
        self.schemas = {name: t.schema for name, t in plain_db.tables.items()}
        self._designer = Designer(plain_db, provider, flags, network)
        self._dml = None
        self._refresh_planner()
        if streaming is None:
            streaming = _default_streaming()
        self.streaming = streaming
        self.executor = PlanExecutor(
            self.backend,
            provider,
            network,
            disk,
            streaming=streaming,
            partitions=partitions,
            prefetch_blocks=prefetch_blocks,
        )

    def _refresh_planner(self) -> None:
        """(Re)build the runtime cost model and planner.

        Plaintext statistics come from the mirror, but scan sizes and
        packing facts from what is actually loaded on the server — so this
        re-runs after every DML statement, which changes table byte counts
        and hom-file row counts.  Plans themselves never go stale (they
        re-scan live tables); only their cost *estimates* would.
        """
        from repro.engine.cost import HomFileInfo

        table_bytes = {
            name: float(self.backend.table_bytes(name))
            for name in self.backend.table_names()
            if name in self.schemas
        }
        store = self.backend.ciphertext_store
        hom_info = {
            name: HomFileInfo(
                store.get(name).rows_per_ciphertext,
                store.get(name).ciphertext_bytes,
            )
            for name in store.names()
        }
        cost_model = MonomiCostModel(
            self.plain_db,
            self.provider,
            network=self.network,
            table_bytes=table_bytes,
            hom_info=hom_info,
        )
        self.planner = Planner(
            self.design,
            self.schemas,
            self.provider,
            cost_model,
            self.flags,
            stats_max=self._designer.stats_max,
            plain_db=self.plain_db,
        )

    @property
    def dml(self):
        """The encrypted DML executor (built on first use)."""
        if self._dml is None:
            from repro.core.dml import DmlExecutor

            self._dml = DmlExecutor(self)
        return self._dml

    @property
    def server_db(self) -> Database:
        """The in-memory server's catalog (pre-backend convention).

        Only the default :class:`InMemoryBackend` exposes a `Database`;
        external backends (SQLite, ...) hold their state inside the engine.
        """
        if isinstance(self.backend, InMemoryBackend):
            return self.backend.database
        raise AttributeError(
            f"backend {self.backend.kind!r} has no in-process Database; "
            "use client.backend instead"
        )

    # -- setup phase -----------------------------------------------------------

    @classmethod
    def setup(
        cls,
        plain_db: Database,
        workload: list[str | ast.Select],
        master_key: bytes = b"monomi-master-key",
        space_budget: float | None = 2.0,
        flags: TechniqueFlags = TechniqueFlags(),
        designer_mode: str = "ilp",
        paillier_bits: int = 512,
        network: NetworkModel | None = None,
        disk: DiskModel | None = None,
        design: PhysicalDesign | None = None,
        det_default: bool = True,
        backend: str | ServerBackend = "memory",
        provider: CryptoProvider | None = None,
        streaming: bool | None = None,
        workers: int | None = None,
        partitions: int | None = None,
        prefetch_blocks: int | None = None,
        shards: int | None = None,
        shard_keys: dict[str, str | None] | None = None,
    ) -> "MonomiClient":
        """Design (unless ``design`` is given), encrypt, and load.

        ``paillier_bits`` defaults to 512 for tractable pure-Python
        benchmarking; pass 2048 for the paper's key size.  ``backend``
        picks the untrusted server: ``"memory"`` (default), ``"sqlite"``,
        or a pre-built :class:`~repro.server.ServerBackend`.  Passing a
        shared ``provider`` keeps the launch-time decryption profile (and
        hence plan choice) identical across clients — the cross-backend
        equivalence harness relies on this.

        Multicore knobs: ``workers`` builds the provider with a crypto
        worker pool (so the encrypted load and client decryption shard
        across cores; ignored when a pre-built ``provider`` is passed),
        ``partitions`` requests partition-parallel server scans, and
        ``prefetch_blocks`` sizes the server→client pipeline queue.  All
        three default from their ``MONOMI_*`` environment variables.

        ``shards`` (default from ``MONOMI_SHARDS``) partitions the
        encrypted tables across that many fresh backends of the chosen
        kind behind a :class:`~repro.server.ShardedBackend`; rows and
        ledger byte counts are shard-count-invariant.  ``shard_keys``
        overrides the per-table routing column (``None`` value =
        replicate that table to the coordinator).  Both are ignored when
        a pre-built backend instance is passed.
        """
        network = network or NetworkModel()
        disk = disk or DiskModel()
        if provider is None:
            provider = CryptoProvider(
                master_key, paillier_bits=paillier_bits, workers=workers
            )
        queries = [
            normalize_query(parse(q) if isinstance(q, str) else q) for q in workload
        ]
        design_result: DesignResult | None = None
        if design is None:
            designer = Designer(
                plain_db, provider, flags, network, det_default=det_default
            )
            if designer_mode == "ilp" and space_budget is not None:
                design_result = designer.design_ilp(queries, space_budget)
            elif designer_mode == "space_greedy" and space_budget is not None:
                design_result = designer.design_space_greedy(queries, space_budget)
            else:
                design_result = designer.design_greedy(queries)
            design = design_result.design
        loader = EncryptedLoader(plain_db, provider)
        if isinstance(backend, str):
            shard_count = resolve_shards(shards)
            if shard_count > 1 or shard_keys:
                backend = make_sharded_backend(
                    backend,
                    shard_count,
                    name=f"{plain_db.name}_enc",
                    shard_keys=shard_keys,
                )
            else:
                backend = make_backend(backend, name=f"{plain_db.name}_enc")
        loader.load_into(backend, design)
        return cls(
            plain_db,
            design,
            provider,
            backend,
            flags,
            network,
            disk,
            design_result,
            streaming=streaming,
            partitions=partitions,
            prefetch_blocks=prefetch_blocks,
        )

    @classmethod
    def connect(
        cls,
        address: str,
        plain_db: Database,
        workload: list[str | ast.Select] | None = None,
        design: PhysicalDesign | None = None,
        provider: CryptoProvider | None = None,
        master_key: bytes = b"monomi-master-key",
        space_budget: float | None = 2.0,
        flags: TechniqueFlags = TechniqueFlags(),
        designer_mode: str = "ilp",
        paillier_bits: int = 512,
        det_default: bool = True,
        network: NetworkModel | None = None,
        disk: DiskModel | None = None,
        streaming: bool | None = None,
        partitions: int | None = None,
        prefetch_blocks: int | None = None,
        connect_timeout: float = 10.0,
        socket_timeout: float = 120.0,
    ) -> "MonomiClient":
        """Attach to a running :class:`~repro.net.MonomiServer`.

        The network dual of :meth:`setup`: the server already holds the
        encrypted database (loaded in its process), so this side only
        needs the trusted state — the key-deriving ``provider`` and the
        :class:`PhysicalDesign` the data was encrypted under.  Pass them
        directly, or pass the ``workload`` (plus the same designer
        settings used at load time) and the design is re-derived: the
        designer is deterministic given the same plaintext statistics,
        provider profile, and budget.  Everything downstream —
        ``execute``/``execute_iter``/``service()``/prepared statements —
        works unchanged over the wire.
        """
        from repro.net.client import RemoteBackend

        backend = RemoteBackend(
            address,
            connect_timeout=connect_timeout,
            socket_timeout=socket_timeout,
        )
        network = network or NetworkModel()
        disk = disk or DiskModel()
        if provider is None:
            provider = CryptoProvider(master_key, paillier_bits=paillier_bits)
        if design is None:
            if workload is None:
                raise ConfigError(
                    "connect() needs design= (the design the server was "
                    "loaded with) or workload= to re-derive it"
                )
            queries = [
                normalize_query(parse(q) if isinstance(q, str) else q)
                for q in workload
            ]
            designer = Designer(
                plain_db, provider, flags, network, det_default=det_default
            )
            if designer_mode == "ilp" and space_budget is not None:
                design = designer.design_ilp(queries, space_budget).design
            elif designer_mode == "space_greedy" and space_budget is not None:
                design = designer.design_space_greedy(
                    queries, space_budget
                ).design
            else:
                design = designer.design_greedy(queries).design
        return cls(
            plain_db,
            design,
            provider,
            backend,
            flags,
            network,
            disk,
            streaming=streaming,
            partitions=partitions,
            prefetch_blocks=prefetch_blocks,
        )

    def close(self) -> None:
        """Release client-held backend resources (network connections for
        remote backends; a no-op for in-process ones)."""
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    # -- runtime -----------------------------------------------------------------

    def execute(
        self,
        sql: str | ast.Select | ast.Insert | ast.Update | ast.Delete,
        params: dict[str, object] | None = None,
        timeout: float | None = None,
    ) -> QueryOutcome:
        """Execute one statement; ``timeout`` (seconds) arms a deadline that
        is checked at every block boundary and caps retry backoff — expiry
        raises :class:`~repro.common.errors.DeadlineExceededError`.

        INSERT/UPDATE/DELETE run through the encrypted DML path: the
        statement is evaluated on the trusted side, rows travel through the
        same batch-encrypt pipeline as the loader, and packed Paillier
        aggregates are patched in place.  The outcome's result set is one
        ``rows_affected`` row and ``planned`` is ``None``.
        """
        statement = parse_statement(sql) if isinstance(sql, str) else sql
        if ast.is_dml(statement):
            statement = normalize_dml(statement, params)
            result, ledger = self.dml.execute(statement)
            # DML moved table/hom sizes; re-snapshot them for cost estimates.
            self._refresh_planner()
            return QueryOutcome(result, ledger, None)
        query = normalize_for_execution(statement, params)
        planned = self.planner.plan(query)
        deadline = Deadline.after(timeout) if timeout is not None else None
        result, ledger = self.executor.execute(planned.plan, deadline=deadline)
        return QueryOutcome(result, ledger, planned)

    def execute_iter(
        self,
        sql: str | ast.Select,
        params: dict[str, object] | None = None,
        block_rows: int | None = None,
        timeout: float | None = None,
    ) -> QueryStream:
        """Execute, streaming decrypted RowBlocks instead of materializing.

        Stream-shaped plans (one RemoteSQL, scan/filter/project/limit
        residual) move block-at-a-time from the server scan through
        decryption to the caller — peak client memory stays O(block) and
        the first block arrives before the server finishes the scan.
        Other plans materialize internally and re-block.  ``execute()``
        remains the drain-everything wrapper around this path.  The
        ``timeout`` deadline covers the whole stream's lifetime, not just
        its creation — a slow consumer can also run out of time.
        """
        statement = parse_statement(sql) if isinstance(sql, str) else sql
        if ast.is_dml(statement):
            raise UnsupportedQueryError(
                "DML statements do not stream; use execute()"
            )
        query = normalize_for_execution(statement, params)
        planned = self.planner.plan(query)
        deadline = Deadline.after(timeout) if timeout is not None else None
        stream = self.executor.execute_iter(
            planned.plan, block_rows=block_rows, deadline=deadline
        )
        return QueryStream(stream, planned)

    def explain(
        self, sql: str | ast.Select, params: dict[str, object] | None = None
    ) -> str:
        query = parse(sql) if isinstance(sql, str) else sql
        query = normalize_query(query, params)
        planned = self.planner.plan(query)
        header = (
            f"estimated cost: {planned.cost.total_seconds:.4f}s "
            f"(server {planned.cost.server_seconds:.4f}s, "
            f"net {planned.cost.transfer_seconds:.4f}s, "
            f"client {planned.cost.client_seconds:.4f}s); "
            f"{planned.candidates_tried} candidate plans"
        )
        return header + "\n" + planned.plan.explain()

    # -- concurrent service ------------------------------------------------------

    def service(
        self, workers: int = 4, plan_cache_size: int = 128
    ) -> "MonomiService":
        """A concurrent query service over this client's database.

        Serves N sessions at once on a worker thread pool: per-worker
        backend connections, per-session cost ledgers, an LRU plan cache
        keyed on ⟨normalized SQL, design fingerprint⟩, and a
        prepared-statement API.  Single-session code keeps using
        :meth:`execute` unchanged.  See :class:`repro.service.MonomiService`.
        """
        from repro.service import MonomiService

        return MonomiService(
            self, workers=workers, plan_cache_size=plan_cache_size
        )

    # -- reporting --------------------------------------------------------------------

    def server_bytes(self) -> int:
        return self.backend.total_bytes

    def plaintext_bytes(self) -> int:
        return sum(t.total_bytes for t in self.plain_db.tables.values())

    def space_overhead(self) -> float:
        return self.server_bytes() / max(1, self.plaintext_bytes())
