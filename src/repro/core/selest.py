"""Plaintext selectivity estimation for pushed predicates.

The server-side optimizer cannot interpolate range predicates over OPE
ciphertexts (the encrypted literal's position in ciphertext space is not
linearly related to the plaintext's position).  The trusted client *can*:
it sees the plaintext predicate and the plaintext statistics.  The splitter
estimates each pushed conjunct's selectivity here and attaches the product
to the RemoteSQL node as a hint for the cost model — the same division of
knowledge the paper's client library has (it owns the statistics used for
pre-filter thresholds, §5.4/§6.4).
"""

from __future__ import annotations

import datetime

from repro.core.rewrite import BindingContext
from repro.engine.catalog import Database
from repro.sql import ast

_DEFAULT_NDV = 200.0


class SelectivityEstimator:
    def __init__(self, plain_db: Database, bindings: BindingContext) -> None:
        self.plain_db = plain_db
        self.bindings = bindings

    def conjunct(self, expr: ast.Expr) -> float:
        if isinstance(expr, ast.Literal):
            return 1.0 if expr.value else 0.0
        if isinstance(expr, ast.BinOp):
            if expr.op == "and":
                return self.conjunct(expr.left) * self.conjunct(expr.right)
            if expr.op == "or":
                a, b = self.conjunct(expr.left), self.conjunct(expr.right)
                return min(1.0, a + b - a * b)
            if expr.op == "=":
                return self._equality(expr)
            if expr.op == "<>":
                return max(0.0, 1.0 - self._equality(expr))
            if expr.op in ("<", "<=", ">", ">="):
                return self._range(expr)
            return 0.5
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            return max(0.0, 1.0 - self.conjunct(expr.operand))
        if isinstance(expr, ast.Between):
            return self._between(expr)
        if isinstance(expr, ast.InList):
            stats = self._stats_for(expr.needle)
            ndv = float(stats.num_distinct) if stats and stats.num_distinct else _DEFAULT_NDV
            sel = min(1.0, len(expr.items) / ndv)
            return 1.0 - sel if expr.negated else sel
        if isinstance(expr, ast.Like):
            return 0.95 if expr.negated else 0.05
        if isinstance(expr, ast.IsNull):
            return 0.98 if expr.negated else 0.02
        if isinstance(expr, (ast.Exists, ast.InSubquery)):
            return 0.6
        return 0.5

    # -- internals ---------------------------------------------------------------

    def _equality(self, expr: ast.BinOp) -> float:
        left_stats = self._stats_for(expr.left)
        right_stats = self._stats_for(expr.right)
        if left_stats is not None and right_stats is not None:
            ndv = max(
                left_stats.num_distinct or _DEFAULT_NDV,
                right_stats.num_distinct or _DEFAULT_NDV,
            )
            return 1.0 / float(ndv)
        stats = left_stats or right_stats
        if stats is not None and stats.num_distinct:
            return 1.0 / float(stats.num_distinct)
        return 1.0 / _DEFAULT_NDV

    def _range(self, expr: ast.BinOp) -> float:
        column_side, literal = self._column_vs_literal(expr.left, expr.right)
        op = expr.op
        if column_side is None:
            column_side, literal = self._column_vs_literal(expr.right, expr.left)
            if column_side is None:
                return 0.33
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        stats = self._stats_for(column_side)
        fraction = _position(stats, literal)
        if fraction is None:
            return 0.33
        if op in ("<", "<="):
            return min(1.0, max(0.0, fraction))
        return min(1.0, max(0.0, 1.0 - fraction))

    def _between(self, expr: ast.Between) -> float:
        stats = self._stats_for(expr.needle)
        low = expr.low.value if isinstance(expr.low, ast.Literal) else None
        high = expr.high.value if isinstance(expr.high, ast.Literal) else None
        lo_pos = _position(stats, low)
        hi_pos = _position(stats, high)
        if lo_pos is None or hi_pos is None:
            sel = 0.1
        else:
            sel = min(1.0, max(0.0, hi_pos - lo_pos))
        return 1.0 - sel if expr.negated else sel

    def _column_vs_literal(self, a: ast.Expr, b: ast.Expr):
        if isinstance(b, ast.Literal) and not isinstance(a, ast.Literal):
            return a, b.value
        return None, None

    def _stats_for(self, expr: ast.Expr):
        columns = ast.find_columns(expr)
        if len(columns) != 1:
            return None
        column = columns[0]
        resolved = self.bindings.resolve_column(column)
        if resolved is None:
            return None
        _, table = resolved
        if table not in self.plain_db.tables:
            return None
        plain = self.plain_db.table(table)
        if not plain.schema.has_column(column.name):
            return None
        return plain.analyze()[column.name]


def _position(stats, value) -> float | None:
    """Fractional position of ``value`` within [min, max] of the column."""
    if stats is None or value is None:
        return None
    lo, hi = stats.min_value, stats.max_value
    if lo is None or hi is None:
        return None
    lo_n, hi_n, v_n = _numeric(lo), _numeric(hi), _numeric(value)
    if lo_n is None or hi_n is None or v_n is None or hi_n <= lo_n:
        return None
    return (v_n - lo_n) / (hi_n - lo_n)


def _numeric(value) -> float | None:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None
