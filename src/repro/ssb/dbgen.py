"""Deterministic SSB data generator.

Cardinalities follow O'Neil et al.'s spec ratios (lineorder ~6M x SF) with
small-scale floors; the value grammars give each query flight its intended
selectivity (year/brand/region/segment filters).
"""

from __future__ import annotations

import datetime
import random

from repro.engine.catalog import Database
from repro.ssb import schema as ssb_schema

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS_BY_REGION = {
    "AFRICA": ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    "AMERICA": ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"],
    "ASIA": ["INDIA", "INDONESIA", "JAPAN", "CHINA", "VIETNAM"],
    "EUROPE": ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"],
    "MIDDLE EAST": ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
}
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
MONTHS = [
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
]
DAYS = ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"]
COLORS = ["red", "green", "blue", "ivory", "peach", "steel", "ghost", "olive"]
CONTAINERS = ["SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG", "WRAP BAG"]

START = datetime.date(1992, 1, 1)
END = datetime.date(1998, 8, 2)


def _datekey(day: datetime.date) -> int:
    return day.year * 10_000 + day.month * 100 + day.day


def generate(scale: float = 0.001, seed: int = 19940101) -> Database:
    rng = random.Random(seed)
    db = Database(name=f"ssb_sf{scale}")
    for table_schema in ssb_schema.ALL_TABLES:
        db.create_table(table_schema)

    _gen_dates(db)
    num_customer = max(30, round(30_000 * scale))
    num_supplier = max(10, round(2_000 * scale))
    num_part = max(40, round(200_000 * scale))
    num_lineorder = max(200, round(6_000_000 * scale))
    _gen_customer(db, rng, num_customer)
    _gen_supplier(db, rng, num_supplier)
    _gen_part(db, rng, num_part)
    _gen_lineorder(db, rng, num_lineorder, num_customer, num_supplier, num_part)
    return db


def _gen_dates(db: Database) -> None:
    table = db.table("ddate")
    day = START
    while day <= END:
        table.insert(
            (
                _datekey(day),
                day,
                DAYS[day.weekday()],
                MONTHS[day.month - 1],
                day.year,
                day.year * 100 + day.month,
                f"{MONTHS[day.month - 1][:3]}{day.year}",
                int(day.strftime("%W")),
            )
        )
        day += datetime.timedelta(days=1)


def _location(rng: random.Random) -> tuple[str, str, str]:
    region = rng.choice(REGIONS)
    nation = rng.choice(NATIONS_BY_REGION[region])
    city = f"{nation[:9]}{rng.randint(0, 9)}"
    return city, nation, region


def _gen_customer(db: Database, rng: random.Random, count: int) -> None:
    table = db.table("customer")
    for i in range(1, count + 1):
        city, nation, region = _location(rng)
        table.insert(
            (
                i,
                f"Customer#{i:09d}",
                city,
                nation,
                region,
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                rng.choice(SEGMENTS),
            )
        )


def _gen_supplier(db: Database, rng: random.Random, count: int) -> None:
    table = db.table("supplier")
    for i in range(1, count + 1):
        city, nation, region = _location(rng)
        table.insert(
            (
                i,
                f"Supplier#{i:09d}",
                city,
                nation,
                region,
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
            )
        )


def _gen_part(db: Database, rng: random.Random, count: int) -> None:
    table = db.table("part")
    for i in range(1, count + 1):
        mfgr_num = rng.randint(1, 5)
        category_num = rng.randint(1, 5)
        category = f"MFGR#{mfgr_num}{category_num}"
        brand = f"{category}{rng.randint(1, 40)}"
        table.insert(
            (
                i,
                " ".join(rng.sample(COLORS, 2)),
                f"MFGR#{mfgr_num}",
                category,
                brand,
                rng.choice(COLORS),
                f"TYPE{rng.randint(1, 25)}",
                rng.randint(1, 50),
                rng.choice(CONTAINERS),
            )
        )


def _gen_lineorder(
    db: Database,
    rng: random.Random,
    count: int,
    num_customer: int,
    num_supplier: int,
    num_part: int,
) -> None:
    table = db.table("lineorder")
    span = (END - START).days
    orderkey = 0
    produced = 0
    while produced < count:
        orderkey += 1
        custkey = rng.randint(1, num_customer)
        orderdate = START + datetime.timedelta(days=rng.randint(0, span))
        priority = rng.choice(PRIORITIES)
        lines = rng.randint(1, 7)
        prices = [rng.randint(90_000, 200_000) for _ in range(lines)]
        total = sum(prices)
        for line_no in range(1, lines + 1):
            quantity = rng.randint(1, 50)
            extended = prices[line_no - 1] * quantity // 10
            discount = rng.randint(0, 10)
            revenue = extended * (100 - discount) // 100
            commit = orderdate + datetime.timedelta(days=rng.randint(30, 90))
            table.insert(
                (
                    orderkey,
                    line_no,
                    custkey,
                    rng.randint(1, num_part),
                    rng.randint(1, num_supplier),
                    _datekey(orderdate),
                    priority,
                    quantity,
                    extended,
                    total,
                    discount,
                    revenue,
                    extended * 6 // 10,
                    rng.randint(0, 8),
                    _datekey(commit),
                    rng.choice(SHIP_MODES),
                )
            )
            produced += 1
            if produced >= count:
                break
