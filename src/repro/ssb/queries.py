"""The 13 SSB queries (4 flights), scaled-integer dialect.

Flight 1 measures revenue deltas under discount/quantity windows, flight 2
revenue by brand over time, flight 3 revenue by customer/supplier geography,
flight 4 profit drill-downs.  All are star joins against ``lineorder`` —
exactly the shape MONOMI's server-side DET joins handle.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SsbQuery:
    flight: int
    number: str
    sql: str


def ssb_queries() -> dict[str, SsbQuery]:
    q: dict[str, SsbQuery] = {}

    q["1.1"] = SsbQuery(1, "1.1", """
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder, ddate
WHERE lo_orderdate = d_datekey AND d_year = 1993
  AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25
""")
    q["1.2"] = SsbQuery(1, "1.2", """
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder, ddate
WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401
  AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35
""")
    q["1.3"] = SsbQuery(1, "1.3", """
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder, ddate
WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6 AND d_year = 1994
  AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35
""")

    q["2.1"] = SsbQuery(2, "2.1", """
SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
FROM lineorder, ddate, part, supplier
WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
  AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' AND s_region = 'AMERICA'
GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1
""")
    q["2.2"] = SsbQuery(2, "2.2", """
SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
FROM lineorder, ddate, part, supplier
WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
  AND lo_suppkey = s_suppkey AND p_brand1 IN ('MFGR#2221', 'MFGR#2228')
  AND s_region = 'ASIA'
GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1
""")
    q["2.3"] = SsbQuery(2, "2.3", """
SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
FROM lineorder, ddate, part, supplier
WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
  AND lo_suppkey = s_suppkey AND p_brand1 = 'MFGR#2221' AND s_region = 'EUROPE'
GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1
""")

    q["3.1"] = SsbQuery(3, "3.1", """
SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue
FROM customer, lineorder, supplier, ddate
WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey AND c_region = 'ASIA' AND s_region = 'ASIA'
  AND d_year >= 1992 AND d_year <= 1997
GROUP BY c_nation, s_nation, d_year ORDER BY d_year, revenue DESC
""")
    q["3.2"] = SsbQuery(3, "3.2", """
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer, lineorder, supplier, ddate
WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey AND c_nation = 'UNITED STATES'
  AND s_nation = 'UNITED STATES' AND d_year >= 1992 AND d_year <= 1997
GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC
""")
    q["3.3"] = SsbQuery(3, "3.3", """
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer, lineorder, supplier, ddate
WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey
  AND c_city IN ('UNITED KI1', 'UNITED KI5')
  AND s_city IN ('UNITED KI1', 'UNITED KI5')
  AND d_year >= 1992 AND d_year <= 1997
GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC
""")
    q["3.4"] = SsbQuery(3, "3.4", """
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer, lineorder, supplier, ddate
WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey
  AND c_city IN ('UNITED KI1', 'UNITED KI5')
  AND s_city IN ('UNITED KI1', 'UNITED KI5') AND d_yearmonth = 'Dec1997'
GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC
""")

    q["4.1"] = SsbQuery(4, "4.1", """
SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
FROM ddate, customer, supplier, part, lineorder
WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
  AND p_mfgr IN ('MFGR#1', 'MFGR#2')
GROUP BY d_year, c_nation ORDER BY d_year, c_nation
""")
    q["4.2"] = SsbQuery(4, "4.2", """
SELECT d_year, s_nation, p_category, SUM(lo_revenue - lo_supplycost) AS profit
FROM ddate, customer, supplier, part, lineorder
WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
  AND d_year IN (1997, 1998) AND p_mfgr IN ('MFGR#1', 'MFGR#2')
GROUP BY d_year, s_nation, p_category ORDER BY d_year, s_nation, p_category
""")
    q["4.3"] = SsbQuery(4, "4.3", """
SELECT d_year, s_city, p_brand1, SUM(lo_revenue - lo_supplycost) AS profit
FROM ddate, customer, supplier, part, lineorder
WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
  AND s_nation = 'UNITED STATES' AND d_year IN (1997, 1998)
  AND p_category = 'MFGR#14'
GROUP BY d_year, s_city, p_brand1 ORDER BY d_year, s_city, p_brand1
""")
    return q
