"""Star Schema Benchmark substrate (the paper's second workload, §3).

The prototype "can handle queries from the standard TPC-H and SSB [19]
benchmarks"; this package provides the SSB star schema, a deterministic
generator, and the 13 queries (4 query flights) in the scaled-integer
dialect.
"""

from repro.ssb.dbgen import generate
from repro.ssb.queries import ssb_queries
from repro.ssb.schema import ALL_TABLES

__all__ = ["ALL_TABLES", "generate", "ssb_queries"]
