"""SSB star schema: one fact table (lineorder) and four dimensions.

Monetary values are integer cents (matching the TPC-H treatment, §8.1).
The ``ddate`` dimension denormalizes calendar attributes, which is what
makes SSB queries pure star joins.
"""

from __future__ import annotations

from repro.engine.schema import TableSchema, schema

DDATE = schema(
    "ddate",
    ("d_datekey", "int"),  # yyyymmdd
    ("d_date", "date"),
    ("d_dayofweek", "text"),
    ("d_month", "text"),
    ("d_year", "int"),
    ("d_yearmonthnum", "int"),
    ("d_yearmonth", "text"),
    ("d_weeknuminyear", "int"),
    primary_key=("d_datekey",),
)

CUSTOMER = schema(
    "customer",
    ("c_custkey", "int"),
    ("c_name", "text"),
    ("c_city", "text"),
    ("c_nation", "text"),
    ("c_region", "text"),
    ("c_phone", "text"),
    ("c_mktsegment", "text"),
    primary_key=("c_custkey",),
)

SUPPLIER = schema(
    "supplier",
    ("s_suppkey", "int"),
    ("s_name", "text"),
    ("s_city", "text"),
    ("s_nation", "text"),
    ("s_region", "text"),
    ("s_phone", "text"),
    primary_key=("s_suppkey",),
)

PART = schema(
    "part",
    ("p_partkey", "int"),
    ("p_name", "text"),
    ("p_mfgr", "text"),
    ("p_category", "text"),
    ("p_brand1", "text"),
    ("p_color", "text"),
    ("p_type", "text"),
    ("p_size", "int"),
    ("p_container", "text"),
    primary_key=("p_partkey",),
)

LINEORDER = schema(
    "lineorder",
    ("lo_orderkey", "int"),
    ("lo_linenumber", "int"),
    ("lo_custkey", "int"),
    ("lo_partkey", "int"),
    ("lo_suppkey", "int"),
    ("lo_orderdate", "int"),  # datekey into ddate
    ("lo_orderpriority", "text"),
    ("lo_quantity", "int"),
    ("lo_extendedprice", "int"),
    ("lo_ordtotalprice", "int"),
    ("lo_discount", "int"),  # percent points
    ("lo_revenue", "int"),
    ("lo_supplycost", "int"),
    ("lo_tax", "int"),
    ("lo_commitdate", "int"),
    ("lo_shipmode", "text"),
    primary_key=("lo_orderkey", "lo_linenumber"),
)

ALL_TABLES: tuple[TableSchema, ...] = (DDATE, CUSTOMER, SUPPLIER, PART, LINEORDER)
