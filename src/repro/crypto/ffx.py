"""FFX-style format-preserving deterministic encryption of integers.

The paper (§5.2) uses the FFX mode of operation [5] so that an n-bit integer
encrypts to an n-bit ciphertext — zero ciphertext expansion — which matters
because analytical scans are I/O bound and ciphertext width is scan time.

Construction: a Feistel permutation over ``[0, 2**nbits)``
(:class:`~repro.crypto.feistel.IntegerPRP`) narrowed to an arbitrary domain
``[0, domain)`` by cycle-walking — re-encrypting until the value lands back
inside the domain.  Cycle-walking terminates quickly in expectation because
``2**nbits < 2 * domain``; it visits a cycle of the permutation restricted
to the domain, so it remains a bijection on ``[0, domain)``.

Signed values are handled by an order-agnostic shift into ``[0, domain)``
(DET reveals only equality, so the shift leaks nothing extra).
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import CryptoError, DomainError
from repro.crypto.feistel import IntegerPRP

_MAX_WALK = 10_000  # Expected walk length is < 2; this bound is cosmetic.


class FFXInteger:
    """Format-preserving deterministic permutation on ``[lo, hi]``."""

    def __init__(self, key: bytes, lo: int, hi: int, tweak: bytes = b"") -> None:
        if hi < lo:
            raise CryptoError(f"empty FFX domain [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self._size = hi - lo + 1
        nbits = max(2, self._size.bit_length())
        if self._size == (1 << (nbits - 1)):
            nbits -= 1  # Exact power of two: no walking needed.
            nbits = max(2, nbits)
        self._prp = IntegerPRP(key, nbits, tweak=tweak)

    def encrypt(self, value: int) -> int:
        offset = self._to_offset(value)
        walked = self._prp.encrypt(offset)
        for _ in range(_MAX_WALK):
            if walked < self._size:
                return self.lo + walked
            walked = self._prp.encrypt(walked)
        raise CryptoError("FFX cycle walk failed to terminate")  # pragma: no cover

    def decrypt(self, value: int) -> int:
        offset = self._to_offset(value)
        walked = self._prp.decrypt(offset)
        for _ in range(_MAX_WALK):
            if walked < self._size:
                return self.lo + walked
            walked = self._prp.decrypt(walked)
        raise CryptoError("FFX cycle walk failed to terminate")  # pragma: no cover

    def encrypt_batch(self, values: Sequence) -> list:
        """Column-wise :meth:`encrypt`: distinct values encrypt once and the
        cycle walk re-permutes all out-of-domain stragglers per Feistel
        round sweep (``None`` passes through)."""
        return self._walk_batch(values, self._prp.encrypt_batch)

    def decrypt_batch(self, values: Sequence) -> list:
        """Column-wise :meth:`decrypt` (``None`` passes through)."""
        return self._walk_batch(values, self._prp.decrypt_batch)

    def _walk_batch(self, values: Sequence, permute_batch) -> list:
        out: list = [None] * len(values)
        groups: dict[int, list[int]] = {}
        for idx, value in enumerate(values):
            if value is None:
                continue
            groups.setdefault(self._to_offset(value), []).append(idx)
        if not groups:
            return out
        distinct = list(groups)
        walked = permute_batch(distinct)
        size = self._size
        for _ in range(_MAX_WALK):
            pending = [i for i, w in enumerate(walked) if w >= size]
            if not pending:
                break
            redone = permute_batch([walked[i] for i in pending])
            for i, w in zip(pending, redone):
                walked[i] = w
        else:  # pragma: no cover
            raise CryptoError("FFX cycle walk failed to terminate")
        lo = self.lo
        for offset, w in zip(distinct, walked):
            result = lo + w
            for idx in groups[offset]:
                out[idx] = result
        return out

    def _to_offset(self, value: int) -> int:
        if not self.lo <= value <= self.hi:
            raise DomainError(
                f"value {value} outside FFX domain [{self.lo}, {self.hi}]"
            )
        return value - self.lo

    def ciphertext_bits(self) -> int:
        """Bits needed to store a ciphertext — same as the plaintext domain."""
        return max(1, (self._size - 1).bit_length())
