"""Variable-width Feistel pseudo-random permutations.

Two PRPs are built here:

* :class:`FeistelPRP` — a balanced Feistel network over *byte strings* of a
  fixed length, with HMAC-SHA256 round functions.  This is the wide-block
  permutation behind our deterministic encryption (the paper uses CMC mode
  [17] plus ciphertext stealing for the same purpose: a PRP whose ciphertext
  is exactly as long as the plaintext).

* :class:`IntegerPRP` — a Feistel permutation over the integer domain
  ``[0, 2**nbits)``, the core of FFX-style format-preserving encryption
  (cycle-walking in :mod:`repro.crypto.ffx` narrows it to arbitrary ranges).

Ten rounds are used; four suffice for a strong PRP by Luby–Rackoff, the
extra rounds cover the unbalanced small-domain cases.

Round keys are held as :class:`~repro.crypto.prf.KeyedPRF` pad-state
templates, so each round function costs two SHA-256 compressions instead
of four; :meth:`IntegerPRP.encrypt_batch` / :meth:`IntegerPRP.decrypt_batch`
additionally loop **rounds over the whole column** — one round-key/width
setup per round per batch instead of per value — which is what the FFX
and DET column paths ride.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import CryptoError
from repro.crypto.prf import KeyedPRF, prf

_ROUNDS = 10


class FeistelPRP:
    """Length-preserving PRP over byte strings of length >= 2."""

    def __init__(self, key: bytes, tweak: bytes = b"") -> None:
        if not key:
            raise CryptoError("key must be non-empty")
        self._round_prfs = [
            KeyedPRF(prf(key, b"feistel-bytes|%d|" % i + tweak))
            for i in range(_ROUNDS)
        ]

    def _round(self, i: int, half: bytes, width: int) -> bytes:
        digest_fn = self._round_prfs[i].digest
        digest = b""
        counter = 0
        while len(digest) < width:
            digest += digest_fn(half + counter.to_bytes(2, "big"))
            counter += 1
        return digest[:width]

    def encrypt(self, data: bytes) -> bytes:
        left, right = self._split(data)
        for i in range(_ROUNDS):
            left, right = right, _xor(left, self._round(i, right, len(left)))
        return left + right

    def decrypt(self, data: bytes) -> bytes:
        left, right = self._split(data)
        for i in reversed(range(_ROUNDS)):
            left, right = _xor(right, self._round(i, left, len(right))), left
        return left + right

    @staticmethod
    def _split(data: bytes) -> tuple[bytes, bytes]:
        if len(data) < 2:
            raise CryptoError("FeistelPRP requires at least 2 bytes")
        mid = len(data) // 2
        return data[:mid], data[mid:]


class IntegerPRP:
    """PRP over ``[0, 2**nbits)`` via an alternating unbalanced Feistel.

    The domain is split into a left half of ``ceil(nbits/2)`` bits and a
    right half of ``floor(nbits/2)`` bits; halves swap widths every round
    (FFX "method 2" structure).  With an even round count the output widths
    line up with the input widths again.
    """

    def __init__(self, key: bytes, nbits: int, tweak: bytes = b"") -> None:
        if nbits < 2:
            raise CryptoError(f"IntegerPRP needs nbits >= 2, got {nbits}")
        self.nbits = nbits
        self._left_bits = nbits - nbits // 2
        self._right_bits = nbits // 2
        self._msg_bytes = (nbits + 7) // 8 + 1
        self._round_prfs = [
            KeyedPRF(prf(key, b"feistel-int|%d|%d|" % (nbits, i) + tweak))
            for i in range(_ROUNDS)
        ]

    def _f(self, i: int, value: int, out_bits: int) -> int:
        return self._round_prfs[i].digest_int(
            value.to_bytes(self._msg_bytes, "big"), out_bits
        )

    def encrypt(self, value: int) -> int:
        self._check(value)
        l_bits, r_bits = self._left_bits, self._right_bits
        left = value >> r_bits
        right = value & ((1 << r_bits) - 1)
        for i in range(_ROUNDS):
            left, right = right, left ^ self._f(i, right, l_bits)
            l_bits, r_bits = r_bits, l_bits
        return (left << r_bits) | right

    def decrypt(self, value: int) -> int:
        self._check(value)
        l_bits, r_bits = self._left_bits, self._right_bits
        left = value >> r_bits
        right = value & ((1 << r_bits) - 1)
        for i in reversed(range(_ROUNDS)):
            prev_l, prev_r = r_bits, l_bits
            prev_right = left
            prev_left = right ^ self._f(i, prev_right, prev_l)
            left, right = prev_left, prev_right
            l_bits, r_bits = prev_l, prev_r
        return (left << r_bits) | right

    def encrypt_batch(self, values: Sequence[int]) -> list[int]:
        """Column-wise :meth:`encrypt`: rounds loop over the whole batch."""
        for value in values:
            self._check(value)
        l_bits, r_bits = self._left_bits, self._right_bits
        mask = (1 << r_bits) - 1
        msg_bytes = self._msg_bytes
        lefts = [value >> r_bits for value in values]
        rights = [value & mask for value in values]
        for i in range(_ROUNDS):
            digest_int = self._round_prfs[i].digest_int
            out_bits = l_bits
            rights, lefts = [
                left ^ digest_int(right.to_bytes(msg_bytes, "big"), out_bits)
                for left, right in zip(lefts, rights)
            ], rights
            l_bits, r_bits = r_bits, l_bits
        return [(left << r_bits) | right for left, right in zip(lefts, rights)]

    def decrypt_batch(self, values: Sequence[int]) -> list[int]:
        """Column-wise :meth:`decrypt`: rounds loop over the whole batch."""
        for value in values:
            self._check(value)
        l_bits, r_bits = self._left_bits, self._right_bits
        mask = (1 << r_bits) - 1
        msg_bytes = self._msg_bytes
        lefts = [value >> r_bits for value in values]
        rights = [value & mask for value in values]
        for i in reversed(range(_ROUNDS)):
            digest_int = self._round_prfs[i].digest_int
            out_bits = r_bits  # Width of the round's recovered left half.
            lefts, rights = [
                right ^ digest_int(left.to_bytes(msg_bytes, "big"), out_bits)
                for left, right in zip(lefts, rights)
            ], lefts
            l_bits, r_bits = r_bits, l_bits
        return [(left << r_bits) | right for left, right in zip(lefts, rights)]

    def _check(self, value: int) -> None:
        if not 0 <= value < (1 << self.nbits):
            raise CryptoError(
                f"value {value} outside PRP domain [0, 2**{self.nbits})"
            )


def _xor(a: bytes, b: bytes) -> bytes:
    # One wide-integer XOR instead of a per-byte generator (hot in every
    # DET/FFX round).
    n = len(a)
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(n, "big")
