"""Keyed pseudo-random functions and key derivation.

All higher-level schemes (DET, OPE, FFX, SEARCH) consume randomness through
the primitives in this module so that a single master key deterministically
derives every per-column subkey — the same key-management structure the
MONOMI client library uses.

The PRF is HMAC-SHA256 (stdlib); a PRF-keyed deterministic stream
(:class:`PRFStream`) supplies the "coins" for lazy-sampled OPE.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.common.errors import CryptoError

KEY_BYTES = 16


def prf(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 of ``message`` under ``key`` (32 output bytes)."""
    return hmac.new(key, message, hashlib.sha256).digest()


def prf_int(key: bytes, message: bytes, nbits: int) -> int:
    """A deterministic ``nbits``-bit integer derived from the PRF.

    For outputs longer than one digest, the PRF is iterated in counter mode.
    """
    if nbits <= 0:
        raise CryptoError(f"nbits must be positive, got {nbits}")
    nbytes = (nbits + 7) // 8
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out.extend(prf(key, message + counter.to_bytes(4, "big")))
        counter += 1
    value = int.from_bytes(bytes(out[:nbytes]), "big")
    return value >> (nbytes * 8 - nbits)


def derive_key(master_key: bytes, *labels: str | bytes | int) -> bytes:
    """Derive a subkey from ``master_key`` and a label path.

    Labels identify the column and scheme, e.g.
    ``derive_key(k, "lineitem", "l_quantity", "OPE")``.  Distinct label
    paths produce independent subkeys.
    """
    if not master_key:
        raise CryptoError("master key must be non-empty")
    material = b"\x00".join(_label_bytes(label) for label in labels)
    return prf(master_key, b"repro-kdf|" + material)[:KEY_BYTES]


def _label_bytes(label: str | bytes | int) -> bytes:
    if isinstance(label, bytes):
        return label
    if isinstance(label, int):
        return str(label).encode()
    return label.encode()


class PRFStream:
    """Deterministic random stream keyed by (key, tweak).

    Used as the coin source for the OPE hypergeometric sampler: the same
    (key, tweak) always yields the same stream, which is what makes the
    lazy-sampled order-preserving function stateless and consistent across
    invocations.
    """

    def __init__(self, key: bytes, tweak: bytes) -> None:
        self._key = key
        self._tweak = tweak
        self._counter = 0
        self._buffer = b""

    def next_bytes(self, n: int) -> bytes:
        while len(self._buffer) < n:
            block = prf(self._key, self._tweak + self._counter.to_bytes(8, "big"))
            self._buffer += block
            self._counter += 1
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise CryptoError(f"bound must be positive, got {bound}")
        nbits = bound.bit_length()
        nbytes = (nbits + 7) // 8
        shift = nbytes * 8 - nbits
        while True:
            candidate = int.from_bytes(self.next_bytes(nbytes), "big") >> shift
            if candidate < bound:
                return candidate

    def next_unit(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (int.from_bytes(self.next_bytes(8), "big") >> 11) / float(1 << 53)
