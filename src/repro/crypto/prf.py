"""Keyed pseudo-random functions and key derivation.

All higher-level schemes (DET, OPE, FFX, SEARCH) consume randomness through
the primitives in this module so that a single master key deterministically
derives every per-column subkey — the same key-management structure the
MONOMI client library uses.

The PRF is HMAC-SHA256 (stdlib); a PRF-keyed deterministic stream
(:class:`PRFStream`) supplies the "coins" for lazy-sampled OPE.

HMAC pad-state precomputation
-----------------------------
Initialising an HMAC runs two SHA-256 compressions just to absorb the
key's inner/outer pads; for short messages that is half the total work.
Every call here therefore goes through a keyed pad-state template
(``hmac.new(key).copy()``): :class:`KeyedPRF` holds one explicitly for
callers that own a long-lived key (Feistel round keys, OPE pivot keys),
and :func:`prf` transparently reuses templates from a bounded per-process
cache, so ``PRFStream`` and one-shot callers get the same ~2x without an
API change.  Digests are bit-identical to a fresh ``hmac.new`` — only the
pad absorption is shared.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.common.errors import CryptoError

KEY_BYTES = 16

# Keyed pad-state templates, keyed by raw key bytes.  Keys are few and
# long-lived (one per column/scheme/round), but adversarial churn (many
# short-lived providers in tests) is bounded by wholesale reset.
_TEMPLATE_LIMIT = 1024
_TEMPLATES: dict[bytes, "hmac.HMAC"] = {}


def _template(key: bytes) -> "hmac.HMAC":
    template = _TEMPLATES.get(key)
    if template is None:
        if len(_TEMPLATES) >= _TEMPLATE_LIMIT:
            _TEMPLATES.clear()
        template = hmac.new(key, digestmod=hashlib.sha256)
        _TEMPLATES[key] = template
    return template


class KeyedPRF:
    """HMAC-SHA256 under one key, with the pad state absorbed once.

    ``digest`` is equivalent to ``prf(key, message)``; ``digest_int`` to
    ``prf_int(key, message, nbits)``.  Instances pickle by key (the pad
    state re-derives on load), so ciphers holding them stay shippable to
    worker processes.
    """

    __slots__ = ("key", "_template")

    def __init__(self, key: bytes) -> None:
        if not key:
            raise CryptoError("key must be non-empty")
        self.key = key
        self._template = hmac.new(key, digestmod=hashlib.sha256)

    def digest(self, message: bytes) -> bytes:
        mac = self._template.copy()
        mac.update(message)
        return mac.digest()

    def digest_int(self, message: bytes, nbits: int) -> int:
        """Counter-mode integer output, identical to :func:`prf_int`."""
        if nbits <= 0:
            raise CryptoError(f"nbits must be positive, got {nbits}")
        nbytes = (nbits + 7) // 8
        if nbytes <= 32:  # One digest covers it — the Feistel hot path.
            mac = self._template.copy()
            mac.update(message + b"\x00\x00\x00\x00")
            value = int.from_bytes(mac.digest()[:nbytes], "big")
            return value >> (nbytes * 8 - nbits)
        out = bytearray()
        counter = 0
        while len(out) < nbytes:
            mac = self._template.copy()
            mac.update(message + counter.to_bytes(4, "big"))
            out.extend(mac.digest())
            counter += 1
        value = int.from_bytes(bytes(out[:nbytes]), "big")
        return value >> (nbytes * 8 - nbits)

    def __getstate__(self) -> bytes:
        return self.key

    def __setstate__(self, key: bytes) -> None:
        self.key = key
        self._template = hmac.new(key, digestmod=hashlib.sha256)


def prf(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 of ``message`` under ``key`` (32 output bytes)."""
    mac = _template(key).copy()
    mac.update(message)
    return mac.digest()


def prf_int(key: bytes, message: bytes, nbits: int) -> int:
    """A deterministic ``nbits``-bit integer derived from the PRF.

    For outputs longer than one digest, the PRF is iterated in counter mode.
    """
    if nbits <= 0:
        raise CryptoError(f"nbits must be positive, got {nbits}")
    nbytes = (nbits + 7) // 8
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out.extend(prf(key, message + counter.to_bytes(4, "big")))
        counter += 1
    value = int.from_bytes(bytes(out[:nbytes]), "big")
    return value >> (nbytes * 8 - nbits)


def derive_key(master_key: bytes, *labels: str | bytes | int) -> bytes:
    """Derive a subkey from ``master_key`` and a label path.

    Labels identify the column and scheme, e.g.
    ``derive_key(k, "lineitem", "l_quantity", "OPE")``.  Distinct label
    paths produce independent subkeys.
    """
    if not master_key:
        raise CryptoError("master key must be non-empty")
    material = b"\x00".join(_label_bytes(label) for label in labels)
    return prf(master_key, b"repro-kdf|" + material)[:KEY_BYTES]


def _label_bytes(label: str | bytes | int) -> bytes:
    if isinstance(label, bytes):
        return label
    if isinstance(label, int):
        return str(label).encode()
    return label.encode()


class PRFStream:
    """Deterministic random stream keyed by (key, tweak).

    Used as the coin source for the OPE hypergeometric sampler: the same
    (key, tweak) always yields the same stream, which is what makes the
    lazy-sampled order-preserving function stateless and consistent across
    invocations.
    """

    def __init__(self, key: bytes, tweak: bytes) -> None:
        self._key = key
        self._tweak = tweak
        self._counter = 0
        self._buffer = b""

    def next_bytes(self, n: int) -> bytes:
        while len(self._buffer) < n:
            block = prf(self._key, self._tweak + self._counter.to_bytes(8, "big"))
            self._buffer += block
            self._counter += 1
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise CryptoError(f"bound must be positive, got {bound}")
        nbits = bound.bit_length()
        nbytes = (nbits + 7) // 8
        shift = nbytes * 8 - nbits
        while True:
            candidate = int.from_bytes(self.next_bytes(nbytes), "big") >> shift
            if candidate < bound:
                return candidate

    def next_unit(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (int.from_bytes(self.next_bytes(8), "big") >> 11) / float(1 << 53)
