"""Searchable encryption (SEARCH) for ``LIKE`` patterns, SWP [24] style.

The server must evaluate ``column LIKE pattern`` without seeing plaintext.
Following CryptDB/MONOMI, each text value is tokenized and each token is
mapped to a deterministic PRF tag; the query side encrypts the pattern's
token the same way and the server tests tag membership.  The scheme reveals
nothing at rest beyond token counts; at query time it reveals which rows
match (Table 1 and §3's leakage discussion).

Supported pattern shapes — exactly the single-pattern forms the paper's
prototype handles (§7 excludes multi-pattern ``LIKE`` such as
``'%foo%bar%'``, which knocks out TPC-H queries 13 and 16):

* ``'%word%'``  — word containment: tags for every whitespace-delimited word;
* ``'prefix%'`` — field prefix: tags for every prefix of the field up to
  ``max_affix_len`` characters;
* ``'%suffix'`` — field suffix: tags for every suffix up to ``max_affix_len``;
* ``'literal'`` — exact match (a prefix tag of the full padded field).

Each tag is truncated to 8 bytes; false positives are possible with
probability ~2**-64 per comparison, which mirrors SWP's probabilistic
matching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.crypto.prf import derive_key, prf

TAG_BYTES = 8
# Longest prefix/suffix pattern the index answers.  TPC-H's single-pattern
# affix queries ('PROMO%', 'forest%', '%BRASS') are all <= 6 characters;
# 12 leaves headroom while keeping the index ~3x smaller than indexing
# every affix of long fields.
DEFAULT_MAX_AFFIX = 12


@dataclass(frozen=True)
class SearchPattern:
    """A parsed single-pattern LIKE expression."""

    kind: str  # "word" | "prefix" | "suffix" | "exact"
    needle: str


def parse_like_pattern(pattern: str) -> SearchPattern:
    """Classify a LIKE pattern into a supported shape.

    Raises :class:`CryptoError` for multi-pattern shapes (two or more
    ``%``-separated fragments), mirroring the paper's limitation.
    """
    if "_" in pattern:
        raise CryptoError("single-character wildcards (_) are not supported")
    body = pattern
    starts = body.startswith("%")
    ends = body.endswith("%")
    inner = body.strip("%")
    if "%" in inner:
        raise CryptoError(
            f"multi-pattern LIKE {pattern!r} is not supported (paper §7)"
        )
    if not inner:
        raise CryptoError("empty LIKE pattern")
    if starts and ends:
        return SearchPattern("word", inner)
    if ends:
        return SearchPattern("prefix", inner)
    if starts:
        return SearchPattern("suffix", inner)
    return SearchPattern("exact", inner)


class SearchCipher:
    """Word/affix token index with PRF tags."""

    def __init__(self, key: bytes, max_affix_len: int = DEFAULT_MAX_AFFIX) -> None:
        self._word_key = derive_key(key, "search-word")
        self._prefix_key = derive_key(key, "search-prefix")
        self._suffix_key = derive_key(key, "search-suffix")
        self._exact_key = derive_key(key, "search-exact")
        self.max_affix_len = max_affix_len

    # -- index (encrypt) side -------------------------------------------------

    def encrypt(self, text: str) -> frozenset[bytes]:
        """Tag set stored on the server for one field value."""
        tags: set[bytes] = set()
        for word in text.split():
            tags.add(self._tag(self._word_key, word))
        limit = min(len(text), self.max_affix_len)
        for i in range(1, limit + 1):
            tags.add(self._tag(self._prefix_key, text[:i]))
            tags.add(self._tag(self._suffix_key, text[-i:]))
        tags.add(self._tag(self._exact_key, text))
        return frozenset(tags)

    def ciphertext_bytes(self, text: str) -> int:
        """Server-side size of the tag set for one value."""
        return len(self.encrypt(text)) * TAG_BYTES

    # -- query (trapdoor) side --------------------------------------------------

    def trapdoor(self, pattern: str) -> bytes:
        """Encrypted search token the client sends to the server."""
        parsed = parse_like_pattern(pattern)
        if parsed.kind == "word":
            return self._tag(self._word_key, parsed.needle)
        if parsed.kind in ("prefix", "suffix") and len(parsed.needle) > self.max_affix_len:
            raise CryptoError(
                f"affix longer than indexed maximum ({self.max_affix_len})"
            )
        if parsed.kind == "prefix":
            return self._tag(self._prefix_key, parsed.needle)
        if parsed.kind == "suffix":
            return self._tag(self._suffix_key, parsed.needle)
        return self._tag(self._exact_key, parsed.needle)

    @staticmethod
    def matches(tags: frozenset[bytes], trapdoor: bytes) -> bool:
        """Server-side test: does the row's tag set contain the trapdoor?"""
        return trapdoor in tags

    def _tag(self, key: bytes, token: str) -> bytes:
        return prf(key, token.encode("utf-8"))[:TAG_BYTES]
