"""Randomized (RND) encryption: IND-CPA, leaks nothing (Table 1, row 1).

The paper uses AES in CBC mode with a random IV; we use AES in CTR mode with
a random nonce, which has the same leakage profile (none) and a simpler
length story (no padding: ciphertext = nonce || plaintext-length keystream
XOR).  Ciphertext expansion is exactly the nonce (16 bytes), matching the
paper's note that randomized encryption costs one extra IV per value (§7).

No computation can be pushed to the server on RND columns; they exist so the
client can recover values it must process locally.
"""

from __future__ import annotations

import secrets

from repro.common.errors import CryptoError
from repro.crypto.aes import AES128, BLOCK_BYTES

NONCE_BYTES = BLOCK_BYTES


class RndCipher:
    """AES-CTR with a random per-value nonce."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        if nonce is None:
            nonce = secrets.token_bytes(NONCE_BYTES)
        elif len(nonce) != NONCE_BYTES:
            raise CryptoError(f"nonce must be {NONCE_BYTES} bytes")
        return nonce + self._keystream_xor(nonce, plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < NONCE_BYTES:
            raise CryptoError("ciphertext shorter than nonce")
        nonce, body = ciphertext[:NONCE_BYTES], ciphertext[NONCE_BYTES:]
        return self._keystream_xor(nonce, body)

    def _keystream_xor(self, nonce: bytes, data: bytes) -> bytes:
        out = bytearray()
        base = int.from_bytes(nonce, "big")
        for block_index in range((len(data) + BLOCK_BYTES - 1) // BLOCK_BYTES):
            counter_block = ((base + block_index) % (1 << 128)).to_bytes(16, "big")
            keystream = self._aes.encrypt_block(counter_block)
            chunk = data[block_index * BLOCK_BYTES : (block_index + 1) * BLOCK_BYTES]
            out.extend(x ^ y for x, y in zip(chunk, keystream))
        return bytes(out)
