"""Deterministic (DET) encryption: equality-preserving, leaks duplicates.

DET lets the untrusted server evaluate ``a = const``, ``IN``, ``GROUP BY``,
and equi-joins over ciphertexts (Table 1).  The paper uses AES with CMC mode
[17] for wide values and FFX [5] for narrow ones so that ciphertexts are
(nearly) as long as plaintexts — the §5.2 space-efficient encryption that
cuts the ``lineitem`` table size by ~30%.

We mirror that structure with two branches chosen by plaintext length:

* plaintexts up to 15 bytes are framed with a length byte, zero-padded into
  one AES block, and encrypted with a single block call (16-byte
  ciphertext);
* longer plaintexts are framed with a length header and passed through the
  wide-block Feistel PRP (:class:`~repro.crypto.feistel.FeistelPRP`), our
  CMC stand-in — deterministic and length-preserving up to the 1-byte (or
  5-byte, for plaintexts over 254 bytes) frame.

The branches are unambiguous at decryption time: ciphertexts of exactly 16
bytes always came from the AES branch, longer ones from the PRP branch.

Fixed-width integer columns should instead use
:class:`~repro.crypto.ffx.FFXInteger`, which achieves *zero* expansion
(n-bit plaintext to n-bit ciphertext), exactly as the paper uses FFX.

Equality is preserved because each branch is a deterministic permutation per
(key, column); distinct plaintexts cannot collide.
"""

from __future__ import annotations

from repro.common.errors import CryptoError
from repro.crypto.aes import AES128, BLOCK_BYTES
from repro.crypto.feistel import FeistelPRP
from repro.crypto.prf import derive_key

_SHORT_MAX = BLOCK_BYTES - 1  # Fits in one block with a length byte.
_LONG_MARKER = 0xFF  # Frame marker for plaintexts longer than 254 bytes.


class DetCipher:
    """Deterministic, (near) length-preserving encryption of byte strings."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(derive_key(key, "det-aes"))
        self._wide = FeistelPRP(derive_key(key, "det-wide"))

    def encrypt(self, plaintext: bytes) -> bytes:
        if len(plaintext) <= _SHORT_MAX:
            framed = bytes([len(plaintext)]) + plaintext
            framed += b"\x00" * (BLOCK_BYTES - len(framed))
            return self._aes.encrypt_block(framed)
        return self._wide.encrypt(_frame_long(plaintext))

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < BLOCK_BYTES:
            raise CryptoError(f"DET ciphertext must be >= {BLOCK_BYTES} bytes")
        if len(ciphertext) == BLOCK_BYTES:
            framed = self._aes.decrypt_block(ciphertext)
            length = framed[0]
            if length > _SHORT_MAX:
                raise CryptoError("corrupt DET ciphertext (bad length byte)")
            return framed[1 : 1 + length]
        return _unframe_long(self._wide.decrypt(ciphertext))

    @staticmethod
    def ciphertext_len(plaintext_len: int) -> int:
        """Ciphertext length in bytes for a given plaintext length."""
        if plaintext_len <= _SHORT_MAX:
            return BLOCK_BYTES
        if plaintext_len <= 254:
            return plaintext_len + 1
        return plaintext_len + 5


def _frame_long(plaintext: bytes) -> bytes:
    if len(plaintext) <= 254:
        return bytes([len(plaintext)]) + plaintext
    return bytes([_LONG_MARKER]) + len(plaintext).to_bytes(4, "big") + plaintext


def _unframe_long(framed: bytes) -> bytes:
    marker = framed[0]
    if marker == _LONG_MARKER:
        length = int.from_bytes(framed[1:5], "big")
        body = framed[5:]
    else:
        length = marker
        body = framed[1:]
    if length != len(body):
        raise CryptoError("corrupt DET ciphertext (frame length mismatch)")
    return body
