"""Paillier plaintext packing and grouped homomorphic addition (§5.2–§5.3).

Paillier plaintexts are ~1,024 bits but column values are 32–64 bits, so
storing one value per ciphertext wastes ~90% of the payload and makes scans
slow.  Following Ge & Zdonik [11] and the paper's §5.3, a
:class:`PackedLayout` packs:

* **columns**: all columns aggregated together by a query are concatenated
  within one row's slot, each padded with ``pad_bits`` zero bits so column
  sums cannot overflow into their neighbour.  ``pad_bits`` is log2 of the
  maximum number of rows expected (the paper assumes ~2**27);
* **rows**: as many whole rows as fit are packed into one plaintext.  A row
  is never split across two plaintexts (the paper accepts the slack to keep
  every column at fixed offsets).

With this layout the server sums *all* packed columns over a result set
with **one modular multiplication per ciphertext** (grouped homomorphic
addition): arithmetically,
``(a1 || ... || ak) + (b1 || ... || bk) = (a1+b1) || ... || (ak+bk)``
as long as no slot overflows, and Paillier multiplication adds plaintexts.

The client decrypts the single running ciphertext and reads each column's
total by summing that column's slot across the row positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import CryptoError, DomainError
from repro.crypto.paillier import PaillierPrivateKey, PaillierPublicKey

DEFAULT_PAD_BITS = 27  # Paper: log2 of max table rows, ~2**27.


@dataclass(frozen=True)
class PackedLayout:
    """Slot layout for grouped homomorphic addition.

    ``column_bits[i]`` is the plaintext width of packed column ``i``; each
    slot is ``column_bits[i] + pad_bits`` wide.
    """

    column_bits: tuple[int, ...]
    pad_bits: int
    plaintext_bits: int

    def __post_init__(self) -> None:
        if not self.column_bits:
            raise CryptoError("PackedLayout needs at least one column")
        if any(b <= 0 for b in self.column_bits):
            raise CryptoError("column widths must be positive")
        if self.row_bits > self.plaintext_bits:
            raise CryptoError(
                f"one row ({self.row_bits} bits) does not fit in a "
                f"{self.plaintext_bits}-bit plaintext"
            )

    @property
    def slot_bits(self) -> tuple[int, ...]:
        return tuple(b + self.pad_bits for b in self.column_bits)

    @property
    def row_bits(self) -> int:
        return sum(self.slot_bits)

    @property
    def rows_per_ciphertext(self) -> int:
        return self.plaintext_bits // self.row_bits

    def slot_offset(self, row_index: int, column_index: int) -> int:
        """Bit offset of (row-in-group, column) within the plaintext."""
        if not 0 <= row_index < self.rows_per_ciphertext:
            raise DomainError(f"row index {row_index} out of group")
        if not 0 <= column_index < len(self.column_bits):
            raise DomainError(f"column index {column_index} out of layout")
        offset = row_index * self.row_bits
        for width in self.slot_bits[:column_index]:
            offset += width
        return offset

    # -- encode / decode ------------------------------------------------------

    def encode_rows(self, rows: Sequence[Sequence[int]]) -> int:
        """Pack up to ``rows_per_ciphertext`` rows into one plaintext integer."""
        if len(rows) > self.rows_per_ciphertext:
            raise DomainError(
                f"{len(rows)} rows exceed group capacity {self.rows_per_ciphertext}"
            )
        plaintext = 0
        for r, row in enumerate(rows):
            if len(row) != len(self.column_bits):
                raise DomainError(
                    f"row has {len(row)} values, layout has {len(self.column_bits)}"
                )
            for c, value in enumerate(row):
                if value < 0:
                    raise DomainError("packed values must be non-negative")
                if value.bit_length() > self.column_bits[c]:
                    raise DomainError(
                        f"value {value} wider than column {c} "
                        f"({self.column_bits[c]} bits)"
                    )
                plaintext |= value << self.slot_offset(r, c)
        return plaintext

    def decode_column_sums(self, plaintext: int) -> list[int]:
        """Extract per-column totals from a decrypted running sum.

        Each slot holds the sum of that (row-position, column) across all
        multiplied ciphertexts; a column's total is the sum of its slot
        values across all row positions.
        """
        totals = [0] * len(self.column_bits)
        for r in range(self.rows_per_ciphertext):
            for c in range(len(self.column_bits)):
                offset = self.slot_offset(r, c)
                width = self.slot_bits[c]
                totals[c] += (plaintext >> offset) & ((1 << width) - 1)
        return totals

    def decode_rows(self, plaintext: int, num_rows: int) -> list[list[int]]:
        """Recover individual packed rows (used when inspecting a single
        un-summed ciphertext, e.g. for client-side aggregation)."""
        if num_rows > self.rows_per_ciphertext:
            raise DomainError("more rows requested than the group holds")
        rows: list[list[int]] = []
        for r in range(num_rows):
            row = []
            for c in range(len(self.column_bits)):
                offset = self.slot_offset(r, c)
                row.append((plaintext >> offset) & ((1 << self.slot_bits[c]) - 1))
            rows.append(row)
        return rows

    def max_safe_rows(self) -> int:
        """How many rows can be summed before a slot could overflow.

        Each slot has ``pad_bits`` headroom, so 2**pad_bits rows of maximal
        values are always safe.
        """
        return 1 << self.pad_bits


class GroupedHomomorphicAggregator:
    """Server-side accumulator implementing grouped homomorphic addition.

    The server multiplies ciphertexts into per-group accumulators; the
    client decrypts each accumulated ciphertext once and decodes all column
    sums from it.
    """

    def __init__(self, public: PaillierPublicKey, layout: PackedLayout) -> None:
        if layout.plaintext_bits > public.plaintext_bits:
            raise CryptoError(
                "layout plaintext wider than the Paillier payload"
            )
        self._public = public
        self.layout = layout
        self._accumulators: dict[object, int] = {}
        self.multiplications = 0

    def add_ciphertext(self, group_key: object, ciphertext: int) -> None:
        current = self._accumulators.get(group_key)
        if current is None:
            self._accumulators[group_key] = ciphertext
        else:
            self._accumulators[group_key] = self._public.add(current, ciphertext)
            self.multiplications += 1

    def accumulated(self) -> dict[object, int]:
        return dict(self._accumulators)


def decrypt_column_sums(
    private: PaillierPrivateKey, layout: PackedLayout, ciphertext: int
) -> list[int]:
    """Client-side: one decryption yields every packed column's total."""
    return layout.decode_column_sums(private.decrypt(ciphertext))
