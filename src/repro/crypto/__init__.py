"""Cryptographic substrate: every scheme in the paper's Table 1.

========== ============================= ==========================
Scheme     Server operations enabled      Leakage at rest
========== ============================= ==========================
RND        none                           none
DET        ``=``, ``IN``, GROUP BY, join  duplicates
OPE        ``<``, MAX/MIN, ORDER BY       order (+ partial plaintext)
HOM        ``+``, SUM (Paillier)          none
SEARCH     ``LIKE`` (single pattern)      token counts; matches/query
========== ============================= ==========================
"""

from repro.crypto.aes import AES128
from repro.crypto.det import DetCipher
from repro.crypto.feistel import FeistelPRP, IntegerPRP
from repro.crypto.ffx import FFXInteger
from repro.crypto.ope import OpeCipher
from repro.crypto.packing import (
    GroupedHomomorphicAggregator,
    PackedLayout,
    decrypt_column_sums,
)
from repro.crypto.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.prf import PRFStream, derive_key, prf, prf_int
from repro.crypto.rnd import RndCipher
from repro.crypto.search import SearchCipher, parse_like_pattern

__all__ = [
    "AES128",
    "DetCipher",
    "FFXInteger",
    "FeistelPRP",
    "GroupedHomomorphicAggregator",
    "IntegerPRP",
    "OpeCipher",
    "PRFStream",
    "PackedLayout",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "RndCipher",
    "SearchCipher",
    "decrypt_column_sums",
    "derive_key",
    "generate_keypair",
    "parse_like_pattern",
    "prf",
    "prf_int",
]
