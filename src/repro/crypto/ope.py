"""Order-preserving encryption (OPE), Boldyreva et al. [6] style.

OPE lets the untrusted server evaluate ``a > const``, ``MAX``/``MIN`` and
``ORDER BY`` directly on ciphertexts.  It is MONOMI's weakest scheme: it
reveals the order of plaintexts plus partial plaintext information [7]
(Table 1), which is why the designer uses it sparingly (§8.7).

Construction — the lazy-sampled order-preserving function of BCLO'09:
a random order-preserving injection from plaintext domain ``[lo, hi]`` into
a larger ciphertext range is defined implicitly by recursive binary
descent.  At each step the ciphertext range is halved at pivot ``y`` and the
number of plaintexts mapped at or below ``y`` is drawn from the
hypergeometric distribution — with *deterministic* coins derived from a PRF
keyed on the (domain, range) rectangle, so every encryption walks the same
implicit function without shared state.

The hypergeometric draw is exact (log-space inverse CDF) when the domain
side is small and switches to the normal approximation for large instances;
both are deterministic given the PRF stream.  The approximation preserves
the scheme's interface and leakage profile exactly — only the distribution
over the (already leaky) set of order-preserving functions differs
microscopically, which no experiment in the paper depends on.

Batch APIs and the pivot cache
------------------------------
Every value in a column walks the *same* implicit tree, so per-value
descent recomputes every shared pivot from scratch — the dominant client
decryption cost in realistic workloads (~60% of decrypt time before this
layer existed).  Two amortizations attack it:

* :meth:`OpeCipher.encrypt_batch` / :meth:`OpeCipher.decrypt_batch` do a
  **shared-tree descent**: the batch's distinct values are sorted, values
  in the same (domain, range) rectangle are grouped, each rectangle's
  pivot is drawn **once per batch**, and the sorted group is partitioned
  at the pivot by binary search.  The cost drops from N·depth pivot draws
  to one draw per *distinct visited rectangle* — the top ~log₂N levels
  (more for clustered columns, which share a long tree prefix) are paid
  once for the whole batch.  Results are element-wise identical to the
  scalar walk: the pivots are deterministic PRF draws keyed by rectangle,
  so visiting each rectangle once computes exactly what every per-value
  walk would.

* A bounded LRU **pivot cache** keyed on the rectangle is consulted by
  scalar and batch paths alike.  Encryption and decryption walk the same
  implicit function, so they share it; because it lives on the (per
  column/type) cipher instance it also persists across queries — the top
  of the tree hits on every query that touches the column.  Leakage is
  unchanged: pivots are deterministic functions of the key, cached or
  not, and the cache lives with the key on the trusted client.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from statistics import NormalDist
from typing import Sequence

from repro.common.errors import CryptoError, DomainError
from repro.common.lru import CacheStats, LRUCache
from repro.crypto.prf import KeyedPRF, PRFStream, derive_key

_EXACT_DOMAIN_LIMIT = 64
_NORMAL = NormalDist()
_ZERO8 = (0).to_bytes(8, "big")

# Pivot-cache entries are small tuples; 32k of them cover the top ~15
# levels of the descent tree — the levels every value in a column shares.
DEFAULT_PIVOT_CACHE = 32768

# Rectangles with domain spans below this are one value's private descent
# tail: they are cheap (exact sampler, memoized CDF tables), essentially
# never shared across values or queries, and a column batch streams through
# them in sorted order — LRU's worst case, which would evict the shared top
# of the tree.  Only wider rectangles enter the pivot cache.
_PIVOT_CACHE_MIN_SPAN = _EXACT_DOMAIN_LIMIT


class OpeCipher:
    """Stateless order-preserving encryption on integers in ``[lo, hi]``.

    ``expansion_bits`` controls how much larger the ciphertext range is than
    the plaintext domain; the paper's OPE maps 32-bit plaintexts into
    64-bit ciphertexts, i.e. ~32 expansion bits.  ``pivot_cache_size``
    bounds the per-cipher pivot LRU (0 disables caching).
    """

    def __init__(
        self,
        key: bytes,
        lo: int,
        hi: int,
        expansion_bits: int = 24,
        tweak: bytes = b"",
        pivot_cache_size: int = DEFAULT_PIVOT_CACHE,
    ) -> None:
        if hi < lo:
            raise CryptoError(f"empty OPE domain [{lo}, {hi}]")
        if expansion_bits < 1:
            raise CryptoError("OPE needs at least 1 expansion bit")
        self.lo = lo
        self.hi = hi
        self._domain_size = hi - lo + 1
        self._range_size = self._domain_size << expansion_bits
        self._key = derive_key(key, "ope", tweak)
        self._prf = KeyedPRF(self._key)
        self._pivots = LRUCache(pivot_cache_size) if pivot_cache_size else None

    # -- public API ---------------------------------------------------------

    def encrypt(self, value: int) -> int:
        if not self.lo <= value <= self.hi:
            raise DomainError(f"value {value} outside OPE domain [{self.lo}, {self.hi}]")
        m = value - self.lo
        d_lo, d_hi = 0, self._domain_size - 1
        r_lo, r_hi = 0, self._range_size - 1
        while d_lo < d_hi:
            d_lo, d_hi, r_lo, r_hi = self._descend(m, d_lo, d_hi, r_lo, r_hi)
        return self._leaf_cipher(d_lo, r_lo, r_hi)

    def decrypt(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self._range_size:
            raise CryptoError(f"OPE ciphertext {ciphertext} out of range")
        d_lo, d_hi = 0, self._domain_size - 1
        r_lo, r_hi = 0, self._range_size - 1
        while d_lo < d_hi:
            x, y = self._pivot(d_lo, d_hi, r_lo, r_hi)
            if ciphertext <= y:
                d_hi, r_hi = d_lo + x - 1, y
            else:
                d_lo, r_lo = d_lo + x, y + 1
            if d_hi < d_lo:
                raise CryptoError("invalid OPE ciphertext (empty branch)")
        if self._leaf_cipher(d_lo, r_lo, r_hi) != ciphertext:
            raise CryptoError("invalid OPE ciphertext (leaf mismatch)")
        return self.lo + d_lo

    def encrypt_batch(self, values: Sequence) -> list:
        """Shared-tree :meth:`encrypt` of a column (``None`` passes through).

        Element-wise identical to the scalar walk; duplicates encrypt once.
        """
        out: list = [None] * len(values)
        groups: dict[int, list[int]] = {}
        lo, hi = self.lo, self.hi
        for idx, value in enumerate(values):
            if value is None:
                continue
            if not lo <= value <= hi:
                raise DomainError(
                    f"value {value} outside OPE domain [{lo}, {hi}]"
                )
            groups.setdefault(value - lo, []).append(idx)
        if not groups:
            return out
        distinct = sorted(groups)
        for m, ciphertext in zip(distinct, self._walk_encrypt(distinct)):
            for idx in groups[m]:
                out[idx] = ciphertext
        return out

    def decrypt_batch(self, ciphertexts: Sequence) -> list:
        """Shared-tree :meth:`decrypt` of a column (``None`` passes through).

        Raises the same :class:`CryptoError` the scalar path would if any
        element is invalid (out of range, empty branch, leaf mismatch).
        """
        out: list = [None] * len(ciphertexts)
        groups: dict[int, list[int]] = {}
        range_size = self._range_size
        for idx, ciphertext in enumerate(ciphertexts):
            if ciphertext is None:
                continue
            if not 0 <= ciphertext < range_size:
                raise CryptoError(f"OPE ciphertext {ciphertext} out of range")
            groups.setdefault(ciphertext, []).append(idx)
        if not groups:
            return out
        distinct = sorted(groups)
        for ciphertext, plain in zip(distinct, self._walk_decrypt(distinct)):
            for idx in groups[ciphertext]:
                out[idx] = plain
        return out

    def ciphertext_bits(self) -> int:
        return max(1, (self._range_size - 1).bit_length())

    def cache_stats(self) -> CacheStats:
        """Pivot-cache counters (zeros when caching is disabled)."""
        if self._pivots is None:
            return CacheStats(0, 0, 0, 0, 0)
        return self._pivots.stats()

    def clear_pivot_cache(self) -> None:
        """Drop memoized pivots (results unchanged; counters survive)."""
        if self._pivots is not None:
            self._pivots.clear()

    # -- shared-tree descent --------------------------------------------------

    def _walk_encrypt(self, distinct: list[int]) -> list[int]:
        """Descend once per visited rectangle over sorted distinct values."""
        results = [0] * len(distinct)
        cache = self._pivots
        cache_get = cache.get if cache is not None else None
        cache_put = cache.put if cache is not None else None
        min_span = _PIVOT_CACHE_MIN_SPAN
        sample = _sample_hypergeometric
        prf = self._prf
        stack = [(0, self._domain_size - 1, 0, self._range_size - 1, 0, len(distinct))]
        while stack:
            d_lo, d_hi, r_lo, r_hi, i0, i1 = stack.pop()
            while d_lo < d_hi:
                # _pivot, inlined: this loop is the OPE hot path.
                rect = (d_lo, d_hi, r_lo, r_hi)
                cacheable = cache_get is not None and d_hi - d_lo >= min_span
                pivot = cache_get(rect) if cacheable else None
                if pivot is not None:
                    x, y = pivot
                else:
                    rsize = r_hi - r_lo + 1
                    draws = (rsize + 1) // 2
                    y = r_lo + draws - 1
                    x = sample(
                        d_hi - d_lo + 1,
                        rsize,
                        draws,
                        prf,
                        b"pivot|%d|%d|%d|%d" % rect,
                    )
                    if cacheable:
                        cache_put(rect, (x, y))
                split = d_lo + x - 1
                mid = bisect_right(distinct, split, i0, i1)
                if mid == i1:  # Whole group goes left.
                    d_hi, r_hi = split, y
                elif mid == i0:  # Whole group goes right.
                    d_lo, r_lo = d_lo + x, y + 1
                else:  # Partition: continue left, stack the right group.
                    stack.append((d_lo + x, d_hi, y + 1, r_hi, mid, i1))
                    d_hi, r_hi, i1 = split, y, mid
            # Singleton domain: exactly one distinct value lands here.
            results[i0] = self._leaf_cipher(d_lo, r_lo, r_hi)
        return results

    def _walk_decrypt(self, distinct: list[int]) -> list[int]:
        """Shared descent over sorted distinct ciphertexts."""
        results = [0] * len(distinct)
        cache = self._pivots
        cache_get = cache.get if cache is not None else None
        cache_put = cache.put if cache is not None else None
        min_span = _PIVOT_CACHE_MIN_SPAN
        sample = _sample_hypergeometric
        prf = self._prf
        lo = self.lo
        stack = [(0, self._domain_size - 1, 0, self._range_size - 1, 0, len(distinct))]
        while stack:
            d_lo, d_hi, r_lo, r_hi, i0, i1 = stack.pop()
            while d_lo < d_hi:
                # _pivot, inlined (see _walk_encrypt).
                rect = (d_lo, d_hi, r_lo, r_hi)
                cacheable = cache_get is not None and d_hi - d_lo >= min_span
                pivot = cache_get(rect) if cacheable else None
                if pivot is not None:
                    x, y = pivot
                else:
                    rsize = r_hi - r_lo + 1
                    draws = (rsize + 1) // 2
                    y = r_lo + draws - 1
                    x = sample(
                        d_hi - d_lo + 1,
                        rsize,
                        draws,
                        prf,
                        b"pivot|%d|%d|%d|%d" % rect,
                    )
                    if cacheable:
                        cache_put(rect, (x, y))
                mid = bisect_right(distinct, y, i0, i1)
                if mid > i0 and x == 0:
                    raise CryptoError("invalid OPE ciphertext (empty branch)")
                if mid < i1 and d_lo + x > d_hi:
                    raise CryptoError("invalid OPE ciphertext (empty branch)")
                if mid == i1:  # Whole group at or below the pivot.
                    d_hi, r_hi = d_lo + x - 1, y
                elif mid == i0:  # Whole group above the pivot.
                    d_lo, r_lo = d_lo + x, y + 1
                else:
                    stack.append((d_lo + x, d_hi, y + 1, r_hi, mid, i1))
                    d_hi, r_hi, i1 = d_lo + x - 1, y, mid
            # Singleton domain: only the true leaf ciphertext is valid.
            if i1 - i0 != 1 or distinct[i0] != self._leaf_cipher(d_lo, r_lo, r_hi):
                raise CryptoError("invalid OPE ciphertext (leaf mismatch)")
            results[i0] = lo + d_lo
        return results

    # -- recursion internals --------------------------------------------------

    def _descend(
        self, m: int, d_lo: int, d_hi: int, r_lo: int, r_hi: int
    ) -> tuple[int, int, int, int]:
        x, y = self._pivot(d_lo, d_hi, r_lo, r_hi)
        if m <= d_lo + x - 1:
            return d_lo, d_lo + x - 1, r_lo, y
        return d_lo + x, d_hi, y + 1, r_hi

    def _pivot(self, d_lo: int, d_hi: int, r_lo: int, r_hi: int) -> tuple[int, int]:
        """Pivot for rectangle (domain x range): returns (x, y).

        ``y`` splits the ciphertext range near its midpoint; ``x`` is the
        hypergeometric draw — how many of the ``d`` plaintexts map to
        ciphertexts at or below ``y``.  Wide rectangles (the shared top of
        the tree) memoize in the pivot cache.
        """
        rect = (d_lo, d_hi, r_lo, r_hi)
        cache = self._pivots if d_hi - d_lo >= _PIVOT_CACHE_MIN_SPAN else None
        if cache is not None:
            cached = cache.get(rect)
            if cached is not None:
                return cached
        dsize = d_hi - d_lo + 1
        rsize = r_hi - r_lo + 1
        draws = (rsize + 1) // 2
        y = r_lo + draws - 1
        tweak = b"pivot|%d|%d|%d|%d" % rect
        x = _sample_hypergeometric(dsize, rsize, draws, self._prf, tweak)
        if cache is not None:
            cache.put(rect, (x, y))
        return x, y

    def _leaf_cipher(self, d: int, r_lo: int, r_hi: int) -> int:
        # Rejection-samples the leaf offset exactly like
        # ``PRFStream(key, tweak).next_below(bound)`` — same blocks, same
        # slicing — but through the keyed pad-state template, without a
        # stream object per leaf.
        bound = r_hi - r_lo + 1
        nbits = bound.bit_length()
        nbytes = (nbits + 7) // 8
        shift = nbytes * 8 - nbits
        tweak = b"leaf|%d|%d|%d" % (d, r_lo, r_hi)
        digest = self._prf.digest
        buffer = b""
        counter = 0
        while True:
            while len(buffer) < nbytes:
                buffer += digest(tweak + counter.to_bytes(8, "big"))
                counter += 1
            candidate = int.from_bytes(buffer[:nbytes], "big") >> shift
            buffer = buffer[nbytes:]
            if candidate < bound:
                return r_lo + candidate


def _sample_hypergeometric(
    marked: int, total: int, draws: int, prf: KeyedPRF, tweak: bytes
) -> int:
    """Deterministic draw of X ~ Hypergeometric(total, marked, draws).

    X is the number of marked items among ``draws`` draws without
    replacement from ``total`` items of which ``marked`` are marked.  The
    coin is the first ``next_unit()`` of ``PRFStream(key, tweak)``, drawn
    lazily (degenerate rectangles burn no PRF call) via one pad-state
    template copy instead of a stream object.
    """
    x_min = max(0, marked - (total - draws))
    x_max = min(marked, draws)
    if x_min == x_max:
        return x_min
    block = prf.digest(tweak + _ZERO8)
    u = (int.from_bytes(block[:8], "big") >> 11) / float(1 << 53)
    if marked <= _EXACT_DOMAIN_LIMIT:
        return _exact_inverse_cdf(marked, total, draws, x_min, x_max, u)
    return _normal_inverse_cdf(marked, total, draws, x_min, x_max, u)


# CDF tables for the exact sampler, keyed (marked, total, draws).  Pure
# hypergeometric math — no key material — so one process-wide cache serves
# every cipher.  The tree's range sizes halve deterministically, so only a
# few thousand distinct shapes occur per domain; the bound is a backstop.
_CDF_LIMIT = 8192
_CDF_TABLES: dict[tuple[int, int, int], list[float]] = {}


def _exact_inverse_cdf(
    marked: int, total: int, draws: int, x_min: int, x_max: int, u: float
) -> int:
    """Inverse-CDF sampling with log-space pmf recurrence (exact).

    The cumulative table is memoized per distribution shape; the recurrence
    floats (and hence every draw) are identical to the unmemoized loop.
    """
    key = (marked, total, draws)
    table = _CDF_TABLES.get(key)
    if table is None:
        # pmf(x) = C(marked, x) * C(total-marked, draws-x) / C(total, draws)
        # log-combinations inlined, float operation order matching _log_comb.
        lg = math.lgamma
        unmarked = total - marked
        log_pmf = (
            (lg(marked + 1) - lg(x_min + 1) - lg(marked - x_min + 1))
            + (
                lg(unmarked + 1)
                - lg(draws - x_min + 1)
                - lg(unmarked - (draws - x_min) + 1)
            )
            - (lg(total + 1) - lg(draws + 1) - lg(total - draws + 1))
        )
        pmf = math.exp(log_pmf)
        cdf = pmf
        table = [cdf]
        append = table.append
        for x in range(x_min, x_max):
            # pmf(x+1)/pmf(x) = (marked-x)(draws-x)/((x+1)(total-marked-draws+x+1))
            ratio = ((marked - x) * (draws - x)) / (
                (x + 1) * (total - marked - draws + x + 1)
            )
            pmf *= ratio
            cdf += pmf
            append(cdf)
        if len(_CDF_TABLES) >= _CDF_LIMIT:
            _CDF_TABLES.clear()
        _CDF_TABLES[key] = table
    # First x whose CDF reaches u, capped at x_max — exactly the scan the
    # recurrence loop performed.
    return x_min + min(bisect_left(table, u), len(table) - 1)


def _normal_inverse_cdf(
    marked: int, total: int, draws: int, x_min: int, x_max: int, u: float
) -> int:
    """Normal approximation to the hypergeometric inverse CDF."""
    p = marked / total
    mean = draws * p
    var = draws * p * (1.0 - p) * (total - draws) / max(1.0, total - 1.0)
    std = math.sqrt(max(var, 1e-12))
    # Clamp u away from 0/1 so inv_cdf stays finite.
    u = min(max(u, 1e-12), 1.0 - 1e-12)
    x = round(mean + _NORMAL.inv_cdf(u) * std)
    return min(max(x, x_min), x_max)


def _log_comb(n: int, k: int) -> float:
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
