"""Order-preserving encryption (OPE), Boldyreva et al. [6] style.

OPE lets the untrusted server evaluate ``a > const``, ``MAX``/``MIN`` and
``ORDER BY`` directly on ciphertexts.  It is MONOMI's weakest scheme: it
reveals the order of plaintexts plus partial plaintext information [7]
(Table 1), which is why the designer uses it sparingly (§8.7).

Construction — the lazy-sampled order-preserving function of BCLO'09:
a random order-preserving injection from plaintext domain ``[lo, hi]`` into
a larger ciphertext range is defined implicitly by recursive binary
descent.  At each step the ciphertext range is halved at pivot ``y`` and the
number of plaintexts mapped at or below ``y`` is drawn from the
hypergeometric distribution — with *deterministic* coins derived from a PRF
keyed on the (domain, range) rectangle, so every encryption walks the same
implicit function without shared state.

The hypergeometric draw is exact (log-space inverse CDF) when the domain
side is small and switches to the normal approximation for large instances;
both are deterministic given the PRF stream.  The approximation preserves
the scheme's interface and leakage profile exactly — only the distribution
over the (already leaky) set of order-preserving functions differs
microscopically, which no experiment in the paper depends on.
"""

from __future__ import annotations

import math
from statistics import NormalDist

from repro.common.errors import CryptoError, DomainError
from repro.crypto.prf import PRFStream, derive_key

_EXACT_DOMAIN_LIMIT = 64
_NORMAL = NormalDist()


class OpeCipher:
    """Stateless order-preserving encryption on integers in ``[lo, hi]``.

    ``expansion_bits`` controls how much larger the ciphertext range is than
    the plaintext domain; the paper's OPE maps 32-bit plaintexts into
    64-bit ciphertexts, i.e. ~32 expansion bits.
    """

    def __init__(
        self,
        key: bytes,
        lo: int,
        hi: int,
        expansion_bits: int = 24,
        tweak: bytes = b"",
    ) -> None:
        if hi < lo:
            raise CryptoError(f"empty OPE domain [{lo}, {hi}]")
        if expansion_bits < 1:
            raise CryptoError("OPE needs at least 1 expansion bit")
        self.lo = lo
        self.hi = hi
        self._domain_size = hi - lo + 1
        self._range_size = self._domain_size << expansion_bits
        self._key = derive_key(key, "ope", tweak)

    # -- public API ---------------------------------------------------------

    def encrypt(self, value: int) -> int:
        if not self.lo <= value <= self.hi:
            raise DomainError(f"value {value} outside OPE domain [{self.lo}, {self.hi}]")
        m = value - self.lo
        d_lo, d_hi = 0, self._domain_size - 1
        r_lo, r_hi = 0, self._range_size - 1
        while d_lo < d_hi:
            d_lo, d_hi, r_lo, r_hi = self._descend(m, d_lo, d_hi, r_lo, r_hi)
        return self._leaf_cipher(d_lo, r_lo, r_hi)

    def decrypt(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self._range_size:
            raise CryptoError(f"OPE ciphertext {ciphertext} out of range")
        d_lo, d_hi = 0, self._domain_size - 1
        r_lo, r_hi = 0, self._range_size - 1
        while d_lo < d_hi:
            x, y = self._pivot(d_lo, d_hi, r_lo, r_hi)
            if ciphertext <= y:
                d_hi, r_hi = d_lo + x - 1, y
            else:
                d_lo, r_lo = d_lo + x, y + 1
            if d_hi < d_lo:
                raise CryptoError("invalid OPE ciphertext (empty branch)")
        if self._leaf_cipher(d_lo, r_lo, r_hi) != ciphertext:
            raise CryptoError("invalid OPE ciphertext (leaf mismatch)")
        return self.lo + d_lo

    def ciphertext_bits(self) -> int:
        return max(1, (self._range_size - 1).bit_length())

    # -- recursion internals --------------------------------------------------

    def _descend(
        self, m: int, d_lo: int, d_hi: int, r_lo: int, r_hi: int
    ) -> tuple[int, int, int, int]:
        x, y = self._pivot(d_lo, d_hi, r_lo, r_hi)
        if m <= d_lo + x - 1:
            return d_lo, d_lo + x - 1, r_lo, y
        return d_lo + x, d_hi, y + 1, r_hi

    def _pivot(self, d_lo: int, d_hi: int, r_lo: int, r_hi: int) -> tuple[int, int]:
        """Pivot for rectangle (domain x range): returns (x, y).

        ``y`` splits the ciphertext range near its midpoint; ``x`` is the
        hypergeometric draw — how many of the ``d`` plaintexts map to
        ciphertexts at or below ``y``.
        """
        dsize = d_hi - d_lo + 1
        rsize = r_hi - r_lo + 1
        draws = (rsize + 1) // 2
        y = r_lo + draws - 1
        tweak = b"%d|%d|%d|%d" % (d_lo, d_hi, r_lo, r_hi)
        stream = PRFStream(self._key, b"pivot|" + tweak)
        x = _sample_hypergeometric(dsize, rsize, draws, stream)
        return x, y

    def _leaf_cipher(self, d: int, r_lo: int, r_hi: int) -> int:
        stream = PRFStream(self._key, b"leaf|%d|%d|%d" % (d, r_lo, r_hi))
        return r_lo + stream.next_below(r_hi - r_lo + 1)


def _sample_hypergeometric(marked: int, total: int, draws: int, stream: PRFStream) -> int:
    """Deterministic draw of X ~ Hypergeometric(total, marked, draws).

    X is the number of marked items among ``draws`` draws without
    replacement from ``total`` items of which ``marked`` are marked.
    """
    x_min = max(0, marked - (total - draws))
    x_max = min(marked, draws)
    if x_min == x_max:
        return x_min
    u = stream.next_unit()
    if marked <= _EXACT_DOMAIN_LIMIT:
        return _exact_inverse_cdf(marked, total, draws, x_min, x_max, u)
    return _normal_inverse_cdf(marked, total, draws, x_min, x_max, u)


def _exact_inverse_cdf(
    marked: int, total: int, draws: int, x_min: int, x_max: int, u: float
) -> int:
    """Inverse-CDF sampling with log-space pmf recurrence (exact)."""
    # pmf(x) = C(marked, x) * C(total - marked, draws - x) / C(total, draws)
    log_pmf = (
        _log_comb(marked, x_min)
        + _log_comb(total - marked, draws - x_min)
        - _log_comb(total, draws)
    )
    pmf = math.exp(log_pmf)
    cdf = pmf
    x = x_min
    while cdf < u and x < x_max:
        # pmf(x+1)/pmf(x) = (marked-x)(draws-x) / ((x+1)(total-marked-draws+x+1))
        ratio = ((marked - x) * (draws - x)) / (
            (x + 1) * (total - marked - draws + x + 1)
        )
        pmf *= ratio
        cdf += pmf
        x += 1
    return x


def _normal_inverse_cdf(
    marked: int, total: int, draws: int, x_min: int, x_max: int, u: float
) -> int:
    """Normal approximation to the hypergeometric inverse CDF."""
    p = marked / total
    mean = draws * p
    var = draws * p * (1.0 - p) * (total - draws) / max(1.0, total - 1.0)
    std = math.sqrt(max(var, 1e-12))
    # Clamp u away from 0/1 so inv_cdf stays finite.
    u = min(max(u, 1e-12), 1.0 - 1e-12)
    x = round(mean + _NORMAL.inv_cdf(u) * std)
    return min(max(x, x_min), x_max)


def _log_comb(n: int, k: int) -> float:
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
