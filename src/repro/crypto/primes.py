"""Prime generation for Paillier key setup.

The paper uses NTL for bignum arithmetic; Python integers are arbitrary
precision natively, so only primality testing and prime search are needed.
Generation can be fully deterministic (seeded by a PRF stream) so tests and
benchmarks are reproducible.
"""

from __future__ import annotations

import secrets

from repro.common.errors import CryptoError
from repro.crypto.prf import PRFStream

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller–Rabin primality test with ``rounds`` random bases.

    Error probability is at most 4**-rounds for composite ``n``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, stream: PRFStream | None = None) -> int:
    """Generate a ``bits``-bit prime.

    If ``stream`` is given, candidates are drawn deterministically from it
    (reproducible keys); otherwise from the OS CSPRNG.
    """
    if bits < 8:
        raise CryptoError(f"prime size too small: {bits} bits")
    while True:
        if stream is None:
            candidate = secrets.randbits(bits)
        else:
            candidate = int.from_bytes(stream.next_bytes((bits + 7) // 8), "big")
            candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 1  # Correct size and odd.
        if is_probable_prime(candidate):
            return candidate


def generate_distinct_primes(bits: int, stream: PRFStream | None = None) -> tuple[int, int]:
    """Two distinct primes of the same bit length (for a Paillier modulus)."""
    p = generate_prime(bits, stream)
    while True:
        q = generate_prime(bits, stream)
        if q != p:
            return p, q
