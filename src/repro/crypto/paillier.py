"""Paillier homomorphic encryption [20].

Paillier is MONOMI's additively homomorphic scheme (Table 1): the server can
compute ``E(a + b) = E(a) * E(b) mod n^2`` without the decryption key, which
is how ``SUM()``/``AVG()`` aggregates execute over encrypted data.  The
paper uses 1,024-bit plaintexts and 2,048-bit ciphertexts; key size is a
parameter here so tests stay fast, and the homomorphic identities hold at
any size.

Implementation notes
--------------------
* ``g = n + 1`` so encryption needs no modular exponentiation for the
  message part: ``g^m = 1 + m*n (mod n^2)``.
* Decryption uses the CRT-free textbook form with
  ``lambda = lcm(p-1, q-1)`` and ``mu = L(g^lambda mod n^2)^-1 mod n``.
* Keys can be generated deterministically from a seed (PRF stream) so that
  benchmark databases are reproducible.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass

from repro.common.errors import CryptoError, DomainError
from repro.crypto.prf import PRFStream
from repro.crypto.primes import generate_distinct_primes

DEFAULT_MODULUS_BITS = 2048


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public half of a Paillier key pair: enough to encrypt and to add."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def plaintext_bits(self) -> int:
        """Usable plaintext payload width (the paper's 1,024 bits)."""
        return self.n.bit_length() - 1

    @property
    def ciphertext_bytes(self) -> int:
        return (self.n_squared.bit_length() + 7) // 8

    def encrypt(self, message: int, r: int | None = None) -> int:
        if not 0 <= message < self.n:
            raise DomainError(f"Paillier plaintext out of range [0, n)")
        n2 = self.n_squared
        if r is None:
            r = secrets.randbelow(self.n - 1) + 1
        gm = (1 + message * self.n) % n2  # g^m with g = n+1
        return (gm * pow(r, self.n, n2)) % n2

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition: E(a) (*) E(b) = E(a + b mod n)."""
        return (c1 * c2) % self.n_squared

    def add_many(self, ciphertexts: list[int]) -> int:
        """Product of many ciphertexts — one modular multiply per input.

        This is the inner loop of grouped homomorphic addition (§5.3): one
        modular multiplication per *row*, regardless of how many columns are
        packed inside each ciphertext.
        """
        if not ciphertexts:
            return self.encrypt_zero()
        acc = ciphertexts[0]
        n2 = self.n_squared
        for c in ciphertexts[1:]:
            acc = (acc * c) % n2
        return acc

    def mul_scalar(self, c: int, k: int) -> int:
        """Homomorphic scalar multiply: E(a)^k = E(k * a mod n)."""
        if k < 0:
            raise CryptoError("scalar must be non-negative")
        return pow(c, k, self.n_squared)

    def encrypt_zero(self) -> int:
        return self.encrypt(0)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private half: can decrypt."""

    public: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: int) -> int:
        n = self.public.n
        n2 = self.public.n_squared
        if not 0 <= ciphertext < n2:
            raise CryptoError("Paillier ciphertext out of range")
        u = pow(ciphertext, self.lam, n2)
        return (_big_l(u, n) * self.mu) % n


def generate_keypair(
    modulus_bits: int = DEFAULT_MODULUS_BITS, seed: bytes | None = None
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier key pair with an approximately ``modulus_bits`` n.

    With ``seed``, generation is deterministic (reproducible benchmarks).
    """
    if modulus_bits < 64:
        raise CryptoError(f"modulus too small: {modulus_bits} bits")
    stream = PRFStream(seed, b"paillier-keygen") if seed is not None else None
    p, q = generate_distinct_primes(modulus_bits // 2, stream)
    n = p * q
    lam = math.lcm(p - 1, q - 1)
    n2 = n * n
    g_lam = pow(n + 1, lam, n2)
    mu = pow(_big_l(g_lam, n), -1, n)
    public = PaillierPublicKey(n=n)
    return public, PaillierPrivateKey(public=public, lam=lam, mu=mu)


def _big_l(u: int, n: int) -> int:
    """Paillier's L function: L(u) = (u - 1) / n, exact by construction."""
    return (u - 1) // n
