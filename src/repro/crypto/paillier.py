"""Paillier homomorphic encryption [20].

Paillier is MONOMI's additively homomorphic scheme (Table 1): the server can
compute ``E(a + b) = E(a) * E(b) mod n^2`` without the decryption key, which
is how ``SUM()``/``AVG()`` aggregates execute over encrypted data.  The
paper uses 1,024-bit plaintexts and 2,048-bit ciphertexts; key size is a
parameter here so tests stay fast, and the homomorphic identities hold at
any size.

Implementation notes
--------------------
* ``g = n + 1`` so encryption needs no modular exponentiation for the
  message part: ``g^m = 1 + m*n (mod n^2)``.
* Decryption uses CRT: decrypt mod ``p^2`` and mod ``q^2`` with the
  half-width exponents ``p-1`` / ``q-1``, then recombine with Garner's
  formula — roughly 4x faster than the textbook
  ``lambda = lcm(p-1, q-1)`` / ``mu`` form at 2,048-bit moduli, because
  modular exponentiation is cubic in the operand width.  The textbook path
  is kept as :meth:`PaillierPrivateKey.decrypt_textbook` (equivalence is
  tested) and as the fallback for keys constructed without factors.
* Bulk encryption goes through :class:`EncryptionPool`, a fixed-base
  precomputed-randomness source: one full-width ``r0^n mod n^2`` at setup,
  then each value draws ``(r0^e)^n = (r0^n)^e`` with a short random
  exponent ``e`` — turning the per-value cost from a ``|n|``-bit into a
  128-bit exponentiation.
* Keys can be generated deterministically from a seed (PRF stream) so that
  benchmark databases are reproducible.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.common.errors import CryptoError, DomainError
from repro.crypto.prf import PRFStream
from repro.crypto.primes import generate_distinct_primes

DEFAULT_MODULUS_BITS = 2048

# Short-exponent width for the fixed-base encryption pool.  128 bits of
# randomness in the exponent keeps the obfuscation computationally fresh per
# value while costing ~|n|/128 of a full-width exponentiation.
POOL_EXPONENT_BITS = 128


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public half of a Paillier key pair: enough to encrypt and to add."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def plaintext_bits(self) -> int:
        """Usable plaintext payload width (the paper's 1,024 bits)."""
        return self.n.bit_length() - 1

    @property
    def ciphertext_bytes(self) -> int:
        return (self.n_squared.bit_length() + 7) // 8

    def encrypt(self, message: int, r: int | None = None) -> int:
        if not 0 <= message < self.n:
            raise DomainError(
                f"Paillier plaintext out of range [0, n): "
                f"message={message}, n={self.n}"
            )
        n2 = self.n_squared
        if r is None:
            r = secrets.randbelow(self.n - 1) + 1
        gm = (1 + message * self.n) % n2  # g^m with g = n+1
        return (gm * pow(r, self.n, n2)) % n2

    def encrypt_batch(
        self, messages: Sequence[int], pool: "EncryptionPool | None" = None
    ) -> list[int]:
        """Encrypt many plaintexts with hoisted parameters.

        With a ``pool``, the per-value randomness factor comes from the
        fixed-base short-exponent path; without one, each value pays the
        full-width ``r^n`` exponentiation (but still skips per-call
        attribute lookups).
        """
        n = self.n
        n2 = self.n_squared
        out: list[int] = []
        if pool is not None:
            factor = pool.factor
            for message in messages:
                if not 0 <= message < n:
                    raise DomainError(
                        f"Paillier plaintext out of range [0, n): "
                        f"message={message}, n={n}"
                    )
                out.append(((1 + message * n) * factor()) % n2)
        else:
            for message in messages:
                if not 0 <= message < n:
                    raise DomainError(
                        f"Paillier plaintext out of range [0, n): "
                        f"message={message}, n={n}"
                    )
                r = secrets.randbelow(n - 1) + 1
                out.append(((1 + message * n) * pow(r, n, n2)) % n2)
        return out

    def make_pool(self, seed: bytes | None = None) -> "EncryptionPool":
        return EncryptionPool(self, seed=seed)

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition: E(a) (*) E(b) = E(a + b mod n)."""
        return (c1 * c2) % self.n_squared

    def add_many(self, ciphertexts: list[int]) -> int:
        """Product of many ciphertexts — one modular multiply per input.

        This is the inner loop of grouped homomorphic addition (§5.3): one
        modular multiplication per *row*, regardless of how many columns are
        packed inside each ciphertext.
        """
        if not ciphertexts:
            return self.encrypt_zero()
        acc = ciphertexts[0]
        n2 = self.n_squared
        for c in ciphertexts[1:]:
            acc = (acc * c) % n2
        return acc

    def mul_scalar(self, c: int, k: int) -> int:
        """Homomorphic scalar multiply: E(a)^k = E(k * a mod n)."""
        if k < 0:
            raise CryptoError("scalar must be non-negative")
        return pow(c, k, self.n_squared)

    def encrypt_zero(self) -> int:
        return self.encrypt(0)


class EncryptionPool:
    """Precomputed-randomness source for bulk Paillier encryption.

    Pays one full-width exponentiation up front (``base = r0^n mod n^2``
    for a secret random ``r0``) and then serves per-value obfuscation
    factors ``base^e mod n^2`` for short random exponents ``e`` — each
    factor equals ``(r0^e)^n``, i.e. valid Paillier randomness for the
    (uniformly unknown) value ``r0^e``.
    """

    def __init__(self, public: PaillierPublicKey, seed: bytes | None = None) -> None:
        self.public = public
        self._n2 = public.n_squared
        self._stream = PRFStream(seed, b"paillier-pool") if seed is not None else None
        r0 = self._random_below(public.n - 1) + 1
        self._base = pow(r0, public.n, self._n2)

    def _random_below(self, bound: int) -> int:
        if self._stream is not None:
            return self._stream.next_below(bound)
        return secrets.randbelow(bound)

    def factor(self) -> int:
        """One obfuscation factor ``r^n mod n^2`` (short-exponent path)."""
        e = self._random_below((1 << POOL_EXPONENT_BITS) - 1) + 1
        return pow(self._base, e, self._n2)

    def encrypt(self, message: int) -> int:
        public = self.public
        if not 0 <= message < public.n:
            raise DomainError(
                f"Paillier plaintext out of range [0, n): "
                f"message={message}, n={public.n}"
            )
        return ((1 + message * public.n) * self.factor()) % self._n2


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private half: can decrypt.

    ``p``/``q`` enable the CRT fast path; keys built without them (``0``)
    decrypt through the textbook ``lambda``/``mu`` form.
    """

    public: PaillierPublicKey
    lam: int
    mu: int
    p: int = 0
    q: int = 0

    @cached_property
    def _crt(self) -> tuple[int, int, int, int, int, int] | None:
        """(p2, q2, hp, hq, q_inv, q) or None when factors are unknown."""
        p, q = self.p, self.q
        if not p or not q:
            return None
        p2 = p * p
        q2 = q * q
        n = self.public.n
        # hp = L_p((n+1)^(p-1) mod p^2)^-1 mod p, and symmetrically for q.
        hp = pow((pow(n + 1, p - 1, p2) - 1) // p % p, -1, p)
        hq = pow((pow(n + 1, q - 1, q2) - 1) // q % q, -1, q)
        q_inv = pow(q, -1, p)
        return (p2, q2, hp, hq, q_inv, q)

    def decrypt(self, ciphertext: int) -> int:
        n2 = self.public.n_squared
        if not 0 <= ciphertext < n2:
            raise CryptoError("Paillier ciphertext out of range")
        crt = self._crt
        if crt is None:
            return self._decrypt_textbook_unchecked(ciphertext)
        p2, q2, hp, hq, q_inv, q = crt
        p = self.p
        mp = (pow(ciphertext, p - 1, p2) - 1) // p % p * hp % p
        mq = (pow(ciphertext, q - 1, q2) - 1) // q % q * hq % q
        # Garner recombination: m = mq + q * ((mp - mq) * q^-1 mod p).
        return mq + q * ((mp - mq) * q_inv % p)

    def decrypt_textbook(self, ciphertext: int) -> int:
        """CRT-free reference decryption (``lambda``/``mu`` form)."""
        if not 0 <= ciphertext < self.public.n_squared:
            raise CryptoError("Paillier ciphertext out of range")
        return self._decrypt_textbook_unchecked(ciphertext)

    def _decrypt_textbook_unchecked(self, ciphertext: int) -> int:
        n = self.public.n
        u = pow(ciphertext, self.lam, self.public.n_squared)
        return (_big_l(u, n) * self.mu) % n

    def decrypt_batch(self, ciphertexts: Sequence[int]) -> list[int]:
        """Decrypt many ciphertexts with CRT parameters hoisted out of the
        loop — the client-side hot path for packed-aggregate results."""
        n2 = self.public.n_squared
        crt = self._crt
        if crt is None:
            lam, mu, n = self.lam, self.mu, self.public.n
            out = []
            for c in ciphertexts:
                if not 0 <= c < n2:
                    raise CryptoError("Paillier ciphertext out of range")
                out.append((pow(c, lam, n2) - 1) // n * mu % n)
            return out
        p2, q2, hp, hq, q_inv, q = crt
        p = self.p
        out = []
        for c in ciphertexts:
            if not 0 <= c < n2:
                raise CryptoError("Paillier ciphertext out of range")
            mp = (pow(c, p - 1, p2) - 1) // p % p * hp % p
            mq = (pow(c, q - 1, q2) - 1) // q % q * hq % q
            out.append(mq + q * ((mp - mq) * q_inv % p))
        return out


def generate_keypair(
    modulus_bits: int = DEFAULT_MODULUS_BITS, seed: bytes | None = None
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier key pair with an approximately ``modulus_bits`` n.

    With ``seed``, generation is deterministic (reproducible benchmarks).
    """
    if modulus_bits < 64:
        raise CryptoError(f"modulus too small: {modulus_bits} bits")
    stream = PRFStream(seed, b"paillier-keygen") if seed is not None else None
    p, q = generate_distinct_primes(modulus_bits // 2, stream)
    n = p * q
    lam = math.lcm(p - 1, q - 1)
    n2 = n * n
    g_lam = pow(n + 1, lam, n2)
    mu = pow(_big_l(g_lam, n), -1, n)
    public = PaillierPublicKey(n=n)
    return public, PaillierPrivateKey(public=public, lam=lam, mu=mu, p=p, q=q)


def _big_l(u: int, n: int) -> int:
    """Paillier's L function: L(u) = (u - 1) / n, exact by construction."""
    return (u - 1) // n
