"""MONOMI reproduction: processing analytical queries over encrypted data.

Public entry points:

* :class:`repro.core.MonomiClient` — setup (design + encrypt + load) and
  runtime (plan + split-execute) for the full system;
* :mod:`repro.tpch` — the TPC-H workload used throughout the paper;
* :mod:`repro.baselines` — the comparison systems from §8.

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"
